(* Tests for the comparison systems: each replicates correctly over the
   fabric and exhibits its characteristic protocol structure. *)

let check = Alcotest.(check bool)

let with_baseline make f =
  Util.run_fiber ~until:30_000_000_000 (fun e ->
      let c = Baselines.Common.create e Util.default_cal ~n:3 ~mr_size:65_536 in
      let engine = make c in
      let done_ = Sim.Engine.Ivar.create e in
      Sim.Host.spawn c.Baselines.Common.hosts.(0) ~name:"driver" (fun () ->
          Sim.Engine.Ivar.fill done_ (f e c engine));
      Sim.Engine.Ivar.read done_)

let median_latency e engine n =
  ignore e;
  let s = Sim.Stats.Samples.create () in
  for i = 1 to n do
    Sim.Stats.Samples.add s
      (engine.Baselines.Common.replicate (Bytes.make 64 (Char.chr (i mod 256))))
  done;
  s

let dare_replicates_and_is_slower_than_one_write () =
  with_baseline Baselines.Dare.create (fun e c engine ->
      let s = median_latency e engine 500 in
      let m = Sim.Stats.Samples.median s in
      (* Three sequential one-sided rounds: several times a single RTT. *)
      check (Printf.sprintf "DARE ~3 rounds (%dns)" m) true (m > 3_500 && m < 7_000);
      (* Data and pointers landed at the followers. *)
      check "entry at follower" true
        (Rdma.Mr.get_i64 c.Baselines.Common.mrs.(1) ~off:0 > 0L);
      check "tail pointer advanced" true
        (Rdma.Mr.get_i64 c.Baselines.Common.mrs.(1) ~off:4096 = Int64.of_int 500);
      check "commit pointer advanced" true
        (Rdma.Mr.get_i64 c.Baselines.Common.mrs.(1) ~off:4104 = Int64.of_int 500))

let apus_involves_follower_cpu () =
  with_baseline Baselines.Apus.create (fun e _c engine ->
      let s = median_latency e engine 500 in
      let m = Sim.Stats.Samples.median s in
      (* Two wire legs plus follower poll+process: ~4x Mu (Fig. 4). *)
      check (Printf.sprintf "APUS ~5us (%dns)" m) true (m > 4_000 && m < 7_000))

let apus_paused_follower_stalls_acks () =
  with_baseline Baselines.Apus.create (fun e c engine ->
      ignore (median_latency e engine 50);
      (* Pause one follower: its CPU is on the critical path, but a
         majority (the other follower) suffices. Pause both: no progress
         until resume. *)
      Sim.Host.pause c.Baselines.Common.hosts.(1);
      let t0 = Sim.Engine.now e in
      ignore (engine.Baselines.Common.replicate (Bytes.make 64 'x'));
      check "one paused follower tolerated" true (Sim.Engine.now e - t0 < 1_000_000);
      Sim.Host.resume c.Baselines.Common.hosts.(1))

let hermes_needs_all_acks () =
  with_baseline Baselines.Hermes.create (fun e c engine ->
      let s = median_latency e engine 500 in
      let m = Sim.Stats.Samples.median s in
      check (Printf.sprintf "Hermes ~3.5us (%dns)" m) true (m > 2_800 && m < 5_000);
      (* Hermes blocks on every replica: pausing one member stalls writes
         (its membership reconfiguration is out of scope here). *)
      Sim.Host.pause c.Baselines.Common.hosts.(2);
      let finished = ref false in
      Sim.Host.spawn c.Baselines.Common.hosts.(0) ~name:"stuck-write" (fun () ->
          ignore (engine.Baselines.Common.replicate (Bytes.make 64 'x'));
          finished := true);
      Sim.Engine.sleep e 5_000_000;
      check "write blocked without all acks" false !finished;
      Sim.Host.resume c.Baselines.Common.hosts.(2);
      Sim.Engine.sleep e 5_000_000;
      check "write completes after resume" true !finished)

let hovercraft_order_of_magnitude () =
  with_baseline Baselines.Hovercraft.create (fun e _c engine ->
      let s = median_latency e engine 300 in
      let m = Sim.Stats.Samples.median s in
      check (Printf.sprintf "HovercRaft 30-60us (%dns)" m) true
        (m > 25_000 && m < 70_000))

let baselines_slower_than_mu () =
  (* The headline comparison (Fig. 4): every baseline is at least 2.7x Mu. *)
  let mu =
    Workload.Experiments.mu_replication_latency
      { Workload.Experiments.default_setup with seed = 11L }
      ~samples:500 ~payload:64 ~attach:Mu.Config.Standalone
  in
  let mu_m = Sim.Stats.Samples.median mu in
  List.iter
    (fun system ->
      let s =
        Workload.Experiments.baseline_replication_latency
          { Workload.Experiments.default_setup with seed = 11L }
          ~samples:500 ~system ~payload:64
      in
      let m = Sim.Stats.Samples.median s in
      check
        (Printf.sprintf "baseline %dns vs Mu %dns" m mu_m)
        true
        (float_of_int m >= 2.5 *. float_of_int mu_m))
    [ `Dare; `Apus; `Hermes; `Hovercraft ]

let suite =
  [
    ("dare: 3 sequential rounds", `Quick, dare_replicates_and_is_slower_than_one_write);
    ("apus: follower cpu on critical path", `Quick, apus_involves_follower_cpu);
    ("apus: tolerates one paused follower", `Quick, apus_paused_follower_stalls_acks);
    ("hermes: needs all acks", `Quick, hermes_needs_all_acks);
    ("hovercraft: order of magnitude", `Quick, hovercraft_order_of_magnitude);
    ("all baselines slower than Mu", `Quick, baselines_slower_than_mu);
  ]
