(* Tests for DARE's RAFT-style election (the comparison system's fail-over
   path, §8 / §1). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_election ?(n = 3) ?election_timeout_ms f =
  let e = Util.engine () in
  let c = Baselines.Common.create e Util.default_cal ~n ~mr_size:65_536 in
  let d = Baselines.Dare_election.create ?election_timeout_ms c in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e c d);
      Sim.Engine.halt e);
  Sim.Engine.run ~until:600_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let initial_leader_stable () =
  with_election (fun e _c d ->
      Sim.Engine.sleep e 200_000_000;
      (* No failures: node 0 leads throughout; terms do not churn. *)
      check "leader is 0" true (Baselines.Dare_election.current_leader d = Some 0);
      check_int "term stayed 1" 1 (Baselines.Dare_election.term d 0);
      check "others follow" true
        (Baselines.Dare_election.role d 1 = Baselines.Dare_election.Follower
        && Baselines.Dare_election.role d 2 = Baselines.Dare_election.Follower))

let failover_takes_tens_of_ms () =
  with_election (fun e c d ->
      Sim.Engine.sleep e 50_000_000;
      let t0 = Sim.Engine.now e in
      Sim.Host.pause c.Baselines.Common.hosts.(0);
      let rec wait () =
        match Baselines.Dare_election.current_leader d with
        | Some l when l <> 0 -> l
        | _ ->
          Sim.Engine.sleep e 500_000;
          wait ()
      in
      let new_leader = wait () in
      let dt = Sim.Engine.now e - t0 in
      check "a follower won" true (new_leader = 1 || new_leader = 2);
      check
        (Printf.sprintf "election-timeout bound fail-over (%d ms)" (dt / 1_000_000))
        true
        (dt > 15_000_000 && dt < 60_000_000);
      check "term advanced" true (Baselines.Dare_election.term d new_leader >= 2);
      Sim.Host.resume c.Baselines.Common.hosts.(0);
      (* The stale leader steps down on seeing the higher term. *)
      let rec wait_demote () =
        if Baselines.Dare_election.role d 0 = Baselines.Dare_election.Leader then begin
          Sim.Engine.sleep e 1_000_000;
          wait_demote ()
        end
      in
      wait_demote ();
      check "old leader demoted" true
        (Baselines.Dare_election.role d 0 <> Baselines.Dare_election.Leader))

let at_most_one_leader_per_term () =
  with_election (fun e c d ->
      (* Churn leadership a few times and verify no two live nodes ever
         claim leadership in the same term. *)
      for _ = 1 to 3 do
        Sim.Engine.sleep e 30_000_000;
        (match Baselines.Dare_election.current_leader d with
        | Some l ->
          Sim.Host.pause c.Baselines.Common.hosts.(l);
          Sim.Engine.sleep e 80_000_000;
          Sim.Host.resume c.Baselines.Common.hosts.(l)
        | None -> ());
        Sim.Engine.sleep e 20_000_000;
        let leaders_by_term = Hashtbl.create 4 in
        for i = 0 to 2 do
          if Baselines.Dare_election.role d i = Baselines.Dare_election.Leader then begin
            let t = Baselines.Dare_election.term d i in
            check
              (Printf.sprintf "unique leader for term %d" t)
              false
              (Hashtbl.mem leaders_by_term t);
            Hashtbl.replace leaders_by_term t i
          end
        done
      done)

let measured_failover_matches_paper () =
  with_election (fun _e _c d ->
      let s = Baselines.Dare_election.measure_failover d ~rounds:15 in
      let median_ms = float_of_int (Sim.Stats.Samples.median s) /. 1.0e6 in
      (* The paper: "DARE 30 milliseconds" (§1). *)
      check (Printf.sprintf "median %.1f ms in 20-45" median_ms) true
        (median_ms > 20.0 && median_ms < 45.0))

let suite =
  [
    ("initial leader stable", `Quick, initial_leader_stable);
    ("failover takes tens of ms", `Quick, failover_takes_tens_of_ms);
    ("at most one leader per term", `Quick, at_most_one_leader_per_term);
    ("measured failover matches paper", `Quick, measured_failover_matches_paper);
  ]
