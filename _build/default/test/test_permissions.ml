(* Tests for the permission management plane (§5.2): request/ack arrays,
   single-writer invariant, grant generations, revocation. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_cluster f =
  let e = Util.engine () in
  let smr = Util.mu_cluster e in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:60_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

(* Run [f] inside a fiber on [r]'s host and wait for it. *)
let on_replica (r : Mu.Replica.t) f =
  let done_ = Sim.Engine.Ivar.create (Mu.Replica.engine r) in
  Sim.Host.spawn r.Mu.Replica.host ~name:"test-op" (fun () ->
      Sim.Engine.Ivar.fill done_ (f ()));
  Sim.Engine.Ivar.read done_

let request_and_ack () =
  with_cluster (fun e smr ->
      let r1 = Mu.Smr.replica smr 1 in
      let gen = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for
        (fun () -> List.length (Mu.Permissions.acked r1 ~gen) >= 3)
        e;
      Alcotest.(check (list int)) "all three ack" [ 0; 1; 2 ] (Mu.Permissions.acked r1 ~gen))

let grant_revokes_previous_holder () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 in
      let r1 = Mu.Smr.replica smr 1 and r2 = Mu.Smr.replica smr 2 in
      (* First r1 requests and gets write access everywhere. *)
      let gen1 = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen:gen1) >= 3) e;
      check "r2 granted r1" true (r2.Mu.Replica.perm_holder = Some 1);
      (* Then r0 requests; every replica must revoke r1 and grant r0. *)
      let gen0 = on_replica r0 (fun () -> Mu.Permissions.request_permissions r0) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r0 ~gen:gen0) >= 3) e;
      check "r2 now grants r0" true (r2.Mu.Replica.perm_holder = Some 0);
      check "r1's own log now held by r0" true (r1.Mu.Replica.perm_holder = Some 0);
      (* The QP toward the deposed holder is read-only again. *)
      let p1_at_r2 = Mu.Replica.peer r2 1 in
      check "r1's access revoked at r2" false
        (Rdma.Qp.access p1_at_r2.Mu.Replica.repl_qp).Rdma.Verbs.remote_write)

let single_writer_invariant () =
  with_cluster (fun e smr ->
      (* Fire requests from both contenders concurrently and repeatedly;
         after things settle, each replica grants write access to at most
         one replica. *)
      let r1 = Mu.Smr.replica smr 1 and r2 = Mu.Smr.replica smr 2 in
      for _ = 1 to 5 do
        ignore (on_replica r1 (fun () -> Mu.Permissions.request_permissions r1));
        ignore (on_replica r2 (fun () -> Mu.Permissions.request_permissions r2));
        Sim.Engine.sleep e 300_000
      done;
      Sim.Engine.sleep e 5_000_000;
      Array.iter
        (fun (r : Mu.Replica.t) ->
          let writers =
            List.filter
              (fun (p : Mu.Replica.peer) ->
                (Rdma.Qp.access p.Mu.Replica.repl_qp).Rdma.Verbs.remote_write)
              r.Mu.Replica.peers
          in
          check
            (Printf.sprintf "replica %d grants at most one writer" r.Mu.Replica.id)
            true
            (List.length writers <= 1))
        (Mu.Smr.replicas smr))

let stale_generation_not_reacked () =
  with_cluster (fun e smr ->
      let r1 = Mu.Smr.replica smr 1 in
      let gen1 = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen:gen1) >= 3) e;
      let gen2 = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      check "generations increase" true (Int64.compare gen2 gen1 > 0);
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen:gen2) >= 3) e;
      (* Ack slots now carry gen2; gen1 is no longer acked anywhere. *)
      check_int "old generation gone" 0 (List.length (Mu.Permissions.acked r1 ~gen:gen1)))

let requests_served_in_id_order () =
  with_cluster (fun e smr ->
      (* Write both requests into r2's array at the same instant; the
         management thread must serve the lower id first, so the higher id
         ends up as the final holder only if it was served second. *)
      let r2 = Mu.Smr.replica smr 2 in
      Rdma.Mr.set_i64 r2.Mu.Replica.bg_mr ~off:(Mu.Replica.bg_req_offset 1) 1000L;
      Rdma.Mr.set_i64 r2.Mu.Replica.bg_mr ~off:(Mu.Replica.bg_req_offset 0) 1000L;
      Util.wait_for
        (fun () ->
          Option.value (Hashtbl.find_opt r2.Mu.Replica.last_granted 0) ~default:0L = 1000L
          && Option.value (Hashtbl.find_opt r2.Mu.Replica.last_granted 1) ~default:0L = 1000L)
        e;
      (* Served 0 then 1: final holder is 1. *)
      check "holder is the higher id (served last)" true
        (r2.Mu.Replica.perm_holder = Some 1))

let deposed_writer_fails_fast () =
  with_cluster (fun e smr ->
      let r1 = Mu.Smr.replica smr 1 in
      let gen1 = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen:gen1) >= 3) e;
      (* r1 can write r2's log. *)
      let p2 = Mu.Replica.peer r1 2 in
      let ok =
        on_replica r1 (fun () ->
            Rdma.Qp.repair p2.Mu.Replica.repl_qp;
            Rdma.Qp.post_write p2.Mu.Replica.repl_qp ~wr_id:(Mu.Replica.fresh_wr_id r1)
              ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:p2.Mu.Replica.remote_log_mr
              ~dst_off:Mu.Log.min_proposal_offset;
            (Rdma.Cq.await r1.Mu.Replica.repl_cq).Rdma.Verbs.status)
      in
      check "write allowed while holder" true (ok = Rdma.Verbs.Success);
      (* Depose r1. *)
      let r0 = Mu.Smr.replica smr 0 in
      let gen0 = on_replica r0 (fun () -> Mu.Permissions.request_permissions r0) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r0 ~gen:gen0) >= 3) e;
      let st =
        on_replica r1 (fun () ->
            Rdma.Qp.post_write p2.Mu.Replica.repl_qp ~wr_id:(Mu.Replica.fresh_wr_id r1)
              ~src:(Bytes.make 8 'y') ~src_off:0 ~len:8 ~mr:p2.Mu.Replica.remote_log_mr
              ~dst_off:Mu.Log.min_proposal_offset;
            (Rdma.Cq.await r1.Mu.Replica.repl_cq).Rdma.Verbs.status)
      in
      check "deposed writer's write fails" true (st <> Rdma.Verbs.Success))

let self_grant_fences_others () =
  with_cluster (fun e smr ->
      let r1 = Mu.Smr.replica smr 1 in
      let r0 = Mu.Smr.replica smr 0 in
      (* r1 becomes holder of r0's log... *)
      let gen1 = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen:gen1) >= 3) e;
      check "r0 grants r1" true (r0.Mu.Replica.perm_holder = Some 1);
      (* ...then r0 requests permission (including from itself); its own
         module must revoke r1. *)
      let gen0 = on_replica r0 (fun () -> Mu.Permissions.request_permissions r0) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r0 ~gen:gen0) >= 3) e;
      check "r0 holds its own log" true (r0.Mu.Replica.perm_holder = Some 0);
      let p1_at_r0 = Mu.Replica.peer r0 1 in
      check "r1 fenced out of r0's log" false
        (Rdma.Qp.access p1_at_r0.Mu.Replica.repl_qp).Rdma.Verbs.remote_write)

let suite =
  [
    ("request and ack", `Quick, request_and_ack);
    ("grant revokes previous holder", `Quick, grant_revokes_previous_holder);
    ("single writer invariant", `Quick, single_writer_invariant);
    ("stale generation not re-acked", `Quick, stale_generation_not_reacked);
    ("requests served in id order", `Quick, requests_served_in_id_order);
    ("deposed writer fails fast", `Quick, deposed_writer_fails_fast);
    ("self grant fences others", `Quick, self_grant_fences_others);
  ]
