(* Tests for the simulated RDMA substrate: MRs, QPs, CQs, one-sided
   Write/Read semantics, permissions, failure modes, and the permission
   switch mechanisms. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let await_status cq = (Rdma.Cq.await cq).Rdma.Verbs.status

(* --- MR ------------------------------------------------------------------ *)

let mr_register_and_bounds () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr = Rdma.Mr.register h ~size:128 ~access:Rdma.Verbs.access_rw in
  check_int "size" 128 (Rdma.Mr.size mr);
  check "in bounds" true (Rdma.Mr.in_bounds mr ~off:120 ~len:8);
  check "overflow" false (Rdma.Mr.in_bounds mr ~off:121 ~len:8);
  check "negative" false (Rdma.Mr.in_bounds mr ~off:(-1) ~len:4)

let mr_typed_access () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr = Rdma.Mr.register h ~size:64 ~access:Rdma.Verbs.access_rw in
  Rdma.Mr.set_i64 mr ~off:8 77L;
  Alcotest.(check int64) "roundtrip" 77L (Rdma.Mr.get_i64 mr ~off:8);
  Rdma.Mr.set_bytes mr ~off:16 (Bytes.of_string "hello");
  Alcotest.(check string) "bytes" "hello"
    (Bytes.to_string (Rdma.Mr.get_bytes mr ~off:16 ~len:5))

let mr_alias_shares_memory () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr = Rdma.Mr.register h ~size:64 ~access:Rdma.Verbs.access_rw in
  let ro = Rdma.Mr.alias mr ~access:Rdma.Verbs.access_ro in
  Rdma.Mr.set_i64 mr ~off:0 5L;
  Alcotest.(check int64) "alias sees writes" 5L (Rdma.Mr.get_i64 ro ~off:0);
  check "independent flags" true ((Rdma.Mr.access ro).Rdma.Verbs.remote_write = false)

(* --- Write/Read happy path ------------------------------------------------ *)

let write_delivers_data () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:256 ~access:Rdma.Verbs.access_rw in
      let data = Bytes.of_string "payload!" in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:data ~src_off:0 ~len:8 ~mr:mr_b ~dst_off:16;
      Alcotest.check Util.check_status "success" Rdma.Verbs.Success (await_status cq_a);
      Alcotest.(check string) "data landed" "payload!"
        (Bytes.to_string (Rdma.Mr.get_bytes mr_b ~off:16 ~len:8)))

let write_takes_time () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:256 ~access:Rdma.Verbs.access_rw in
      let t0 = Sim.Engine.now e in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 64 'x') ~src_off:0 ~len:64 ~mr:mr_b
        ~dst_off:0;
      ignore (Rdma.Cq.await cq_a);
      let dt = Sim.Engine.now e - t0 in
      check "plausible one-sided RTT" true (dt > 800 && dt < 3_000))

let write_inline_snapshot () =
  (* The payload is captured at post time: mutating the source afterwards
     must not change what lands remotely. *)
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      let data = Bytes.of_string "AAAA" in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:data ~src_off:0 ~len:4 ~mr:mr_b ~dst_off:0;
      Bytes.fill data 0 4 'B';
      ignore (Rdma.Cq.await cq_a);
      Alcotest.(check string) "snapshot" "AAAA"
        (Bytes.to_string (Rdma.Mr.get_bytes mr_b ~off:0 ~len:4)))

let read_returns_data () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Mr.set_bytes mr_b ~off:8 (Bytes.of_string "remote");
      let dst = Bytes.make 6 '.' in
      Rdma.Qp.post_read qa ~wr_id:2 ~dst ~dst_off:0 ~len:6 ~mr:mr_b ~src_off:8;
      check "dst untouched before completion" true (Bytes.to_string dst = "......");
      Alcotest.check Util.check_status "success" Rdma.Verbs.Success (await_status cq_a);
      Alcotest.(check string) "read data" "remote" (Bytes.to_string dst))

let read_snapshot_at_arrival () =
  (* A Read captures remote memory at its arrival instant, not at the
     completion instant. *)
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Mr.set_i64 mr_b ~off:0 1L;
      let dst = Bytes.make 8 '\000' in
      Rdma.Qp.post_read qa ~wr_id:3 ~dst ~dst_off:0 ~len:8 ~mr:mr_b ~src_off:0;
      (* Overwrite remote memory well after arrival but before our fiber
         sees the completion: schedule far enough to be post-arrival. *)
      Sim.Engine.schedule e ~at:(Sim.Engine.now e + 100_000) (fun () ->
          Rdma.Mr.set_i64 mr_b ~off:0 2L);
      ignore (Rdma.Cq.await cq_a);
      Alcotest.(check int64) "value from arrival time" 1L (Bytes.get_int64_le dst 0))

let writes_fifo_order () =
  (* Many writes on one QP apply in posting order despite wire jitter. *)
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      let n = 200 in
      for i = 1 to n do
        let buf = Bytes.create 8 in
        Bytes.set_int64_le buf 0 (Int64.of_int i);
        Rdma.Qp.post_write qa ~wr_id:i ~src:buf ~src_off:0 ~len:8 ~mr:mr_b ~dst_off:0
      done;
      let last = ref 0 in
      for _ = 1 to n do
        let wc = Rdma.Cq.await cq_a in
        check "completion order" true (wc.Rdma.Verbs.wr_id = !last + 1);
        last := wc.Rdma.Verbs.wr_id
      done;
      Alcotest.(check int64) "last write wins" (Int64.of_int n) (Rdma.Mr.get_i64 mr_b ~off:0))

let payload_size_affects_latency () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:8192 ~access:Rdma.Verbs.access_rw in
      let measure len =
        let s = Sim.Stats.Samples.create () in
        for i = 1 to 200 do
          let t0 = Sim.Engine.now e in
          Rdma.Qp.post_write qa ~wr_id:i ~src:(Bytes.make len 'x') ~src_off:0 ~len ~mr:mr_b
            ~dst_off:0;
          ignore (Rdma.Cq.await cq_a);
          Sim.Stats.Samples.add s (Sim.Engine.now e - t0)
        done;
        Sim.Stats.Samples.median s
      in
      let small = measure 64 and below = measure 200 and above = measure 1024 in
      check "inline sizes comparable" true (abs (below - small) < 200);
      check "DMA fetch kicks in past the threshold" true (above > below + 250))

(* --- Permissions at the responder ----------------------------------------- *)

let write_denied_by_qp_flags () =
  Util.run_fiber (fun e ->
      let _a, b, qa, qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Qp.set_access qb Rdma.Verbs.access_ro;
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "denied" Rdma.Verbs.Remote_access_error
        (await_status cq_a);
      check "requester QP errored" true (Rdma.Qp.state qa = Rdma.Verbs.Err);
      check "responder QP errored" true (Rdma.Qp.state qb = Rdma.Verbs.Err);
      check "memory untouched" true (Rdma.Mr.get_i64 mr_b ~off:0 = 0L))

let read_allowed_when_write_denied () =
  Util.run_fiber (fun e ->
      let _a, b, qa, qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Mr.set_i64 mr_b ~off:0 9L;
      Rdma.Qp.set_access qb Rdma.Verbs.access_ro;
      let dst = Bytes.create 8 in
      Rdma.Qp.post_read qa ~wr_id:1 ~dst ~dst_off:0 ~len:8 ~mr:mr_b ~src_off:0;
      Alcotest.check Util.check_status "read ok" Rdma.Verbs.Success (await_status cq_a))

let write_denied_by_mr_flags () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_ro in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "denied by MR" Rdma.Verbs.Remote_access_error
        (await_status cq_a))

let write_denied_out_of_bounds () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 16 'x') ~src_off:0 ~len:16 ~mr:mr_b
        ~dst_off:56;
      Alcotest.check Util.check_status "bounds" Rdma.Verbs.Remote_access_error
        (await_status cq_a))

let write_denied_invalidated_mr () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Mr.invalidate mr_b;
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "invalid MR" Rdma.Verbs.Remote_access_error
        (await_status cq_a))

let post_on_err_qp_flushes () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Qp.set_state qa Rdma.Verbs.Err;
      Rdma.Qp.post_write qa ~wr_id:5 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "flushed" Rdma.Verbs.Flushed (await_status cq_a);
      check "memory untouched" true (Rdma.Mr.get_i64 mr_b ~off:0 = 0L))

let repair_after_error () =
  Util.run_fiber (fun e ->
      let _a, b, qa, qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Qp.set_access qb Rdma.Verbs.access_ro;
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      ignore (Rdma.Cq.await cq_a);
      (* Re-grant and repair both sides; the next write must succeed. *)
      Rdma.Qp.set_access qb Rdma.Verbs.access_rw;
      Rdma.Qp.repair qa;
      Rdma.Qp.repair qb;
      Rdma.Qp.post_write qa ~wr_id:2 ~src:(Bytes.make 8 'y') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "works again" Rdma.Verbs.Success (await_status cq_a))

(* --- Failure modes --------------------------------------------------------- *)

let paused_process_still_serves () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Sim.Host.pause b;
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'z') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "one-sided op unaffected" Rdma.Verbs.Success
        (await_status cq_a))

let stopped_process_still_serves () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Sim.Host.stop_process b;
      let dst = Bytes.create 8 in
      Rdma.Qp.post_read qa ~wr_id:1 ~dst ~dst_off:0 ~len:8 ~mr:mr_b ~src_off:0;
      Alcotest.check Util.check_status "pinned memory readable" Rdma.Verbs.Success
        (await_status cq_a))

let dead_host_times_out () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Sim.Host.kill_host b;
      let t0 = Sim.Engine.now e in
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "timeout" Rdma.Verbs.Operation_timeout
        (await_status cq_a);
      let dt = Sim.Engine.now e - t0 in
      check "took the RC transport timeout" true
        (dt >= Util.default_cal.Sim.Calibration.rnic_timeout);
      check "QP errored" true (Rdma.Qp.state qa = Rdma.Verbs.Err))

let partition_times_out () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Qp.set_link_up qa false;
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:0;
      Alcotest.check Util.check_status "partitioned" Rdma.Verbs.Operation_timeout
        (await_status cq_a))

let write_hook_fires () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      let seen = ref [] in
      Rdma.Mr.set_write_hook mr_b (Some (fun ~off ~len -> seen := (off, len) :: !seen));
      Rdma.Qp.post_write qa ~wr_id:1 ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
        ~dst_off:24;
      ignore (Rdma.Cq.await cq_a);
      Alcotest.(check (list (pair int int))) "hook saw the write" [ (24, 8) ] !seen)

(* --- two-sided Send/Receive ------------------------------------------------ *)

let send_recv_roundtrip () =
  Util.run_fiber (fun e ->
      let _a, _b, qa, qb, cq_a, cq_b = Util.qp_pair e in
      let dst = Bytes.make 16 '.' in
      Rdma.Qp.post_recv qb ~wr_id:7 ~dst ~dst_off:4 ~max_len:8;
      Rdma.Qp.post_send qa ~wr_id:1 ~src:(Bytes.of_string "two-side") ~src_off:0 ~len:8;
      let send_wc = Rdma.Cq.await cq_a in
      Alcotest.check Util.check_status "send ok" Rdma.Verbs.Success send_wc.Rdma.Verbs.status;
      let recv_wc = Rdma.Cq.await cq_b in
      Alcotest.check Util.check_status "recv ok" Rdma.Verbs.Success recv_wc.Rdma.Verbs.status;
      check_int "recv wr_id" 7 recv_wc.Rdma.Verbs.wr_id;
      check_int "byte_len" 8 recv_wc.Rdma.Verbs.byte_len;
      Alcotest.(check string) "payload landed at offset" "....two-side...."
        (Bytes.to_string dst))

let send_before_recv_waits () =
  (* RNR semantics: the send completes only after a buffer is posted. *)
  Util.run_fiber (fun e ->
      let _a, b, qa, qb, cq_a, _cq_b = Util.qp_pair e in
      Rdma.Qp.post_send qa ~wr_id:1 ~src:(Bytes.of_string "early") ~src_off:0 ~len:5;
      let dst = Bytes.make 8 '\000' in
      Sim.Host.spawn b ~name:"late-recv" (fun () ->
          Sim.Engine.sleep e 50_000;
          Rdma.Qp.post_recv qb ~wr_id:2 ~dst ~dst_off:0 ~max_len:8);
      let t0 = Sim.Engine.now e in
      let wc = Rdma.Cq.await cq_a in
      Alcotest.check Util.check_status "eventually ok" Rdma.Verbs.Success wc.Rdma.Verbs.status;
      check "waited for the receive" true (Sim.Engine.now e - t0 >= 50_000);
      Alcotest.(check string) "delivered" "early"
        (Bytes.to_string (Bytes.sub dst 0 5)))

let sends_consume_recvs_in_order () =
  Util.run_fiber (fun e ->
      let _a, _b, qa, qb, cq_a, cq_b = Util.qp_pair e in
      let bufs = Array.init 3 (fun _ -> Bytes.make 8 '\000') in
      Array.iteri (fun i b -> Rdma.Qp.post_recv qb ~wr_id:i ~dst:b ~dst_off:0 ~max_len:8) bufs;
      check_int "3 posted" 3 (Rdma.Qp.posted_recvs qb);
      for i = 1 to 3 do
        let msg = Bytes.of_string (Printf.sprintf "msg%d...." i) in
        Rdma.Qp.post_send qa ~wr_id:(10 + i) ~src:msg ~src_off:0 ~len:8
      done;
      for _ = 1 to 3 do
        ignore (Rdma.Cq.await cq_a)
      done;
      for i = 0 to 2 do
        let wc = Rdma.Cq.await cq_b in
        check_int "fifo buffer order" i wc.Rdma.Verbs.wr_id;
        Alcotest.(check string) "fifo payload"
          (Printf.sprintf "msg%d...." (i + 1))
          (Bytes.to_string bufs.(i))
      done;
      check_int "all consumed" 0 (Rdma.Qp.posted_recvs qb))

let send_overflow_breaks_connection () =
  Util.run_fiber (fun e ->
      let _a, _b, qa, qb, cq_a, cq_b = Util.qp_pair e in
      Rdma.Qp.post_recv qb ~wr_id:1 ~dst:(Bytes.make 4 '\000') ~dst_off:0 ~max_len:4;
      Rdma.Qp.post_send qa ~wr_id:2 ~src:(Bytes.make 16 'x') ~src_off:0 ~len:16;
      let send_wc = Rdma.Cq.await cq_a in
      check "send failed" true (send_wc.Rdma.Verbs.status <> Rdma.Verbs.Success);
      let recv_wc = Rdma.Cq.await cq_b in
      check "recv errored" true (recv_wc.Rdma.Verbs.status <> Rdma.Verbs.Success);
      check "responder errored" true (Rdma.Qp.state qb = Rdma.Verbs.Err);
      ignore e)

let send_to_dead_host_times_out () =
  Util.run_fiber (fun e ->
      let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
      Sim.Host.kill_host b;
      Rdma.Qp.post_send qa ~wr_id:1 ~src:(Bytes.make 4 'x') ~src_off:0 ~len:4;
      Alcotest.check Util.check_status "timeout" Rdma.Verbs.Operation_timeout
        ((Rdma.Cq.await cq_a).Rdma.Verbs.status);
      ignore e)

(* --- Permission switch mechanisms (Fig. 2) -------------------------------- *)

let qp_flags_switch_quiescent () =
  Util.run_fiber (fun e ->
      let a, _b, qa, _qb, _, _ = Util.qp_pair e in
      ignore a;
      let t0 = Sim.Engine.now e in
      (match Rdma.Perm.change_qp_flags qa Rdma.Verbs.access_ro with
      | Ok () -> ()
      | Error `Qp_error -> Alcotest.fail "quiescent switch must not error");
      let dt = Sim.Engine.now e - t0 in
      check "took ~120us" true (dt > 80_000 && dt < 250_000);
      check "flags applied" true ((Rdma.Qp.access qa).Rdma.Verbs.remote_write = false))

let qp_restart_switch () =
  Util.run_fiber (fun e ->
      let _a, _b, qa, _qb, _, _ = Util.qp_pair e in
      Rdma.Qp.set_state qa Rdma.Verbs.Err;
      let t0 = Sim.Engine.now e in
      Rdma.Perm.restart_qp qa Rdma.Verbs.access_rw;
      let dt = Sim.Engine.now e - t0 in
      check "took ~1.2ms (10x flags, Fig. 2)" true (dt > 800_000 && dt < 2_500_000);
      check "operational" true (Rdma.Qp.state qa = Rdma.Verbs.Rts))

let rereg_scales_with_size () =
  Util.run_fiber (fun e ->
      let a = Util.host e ~id:0 in
      let small = Rdma.Mr.register a ~size:1024 ~access:Rdma.Verbs.access_rw in
      let large = Rdma.Mr.register a ~size:(64 * 1024 * 1024) ~access:Rdma.Verbs.access_rw in
      let time mr =
        let t0 = Sim.Engine.now e in
        Rdma.Perm.rereg_mr mr Rdma.Verbs.access_ro;
        Sim.Engine.now e - t0
      in
      let ts = time small and tl = time large in
      check "large MR much slower" true (tl > 3 * ts))

let flags_hazard_with_inflight () =
  (* With operations in flight, the flag switch sometimes errors — the
     reason Mu needs the fast-slow path (§5.2). *)
  Util.run_fiber (fun e ->
      let _a, b, qa, qb, cq_a, _ = Util.qp_pair e in
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      let errors = ref 0 in
      let stop = ref false in
      Sim.Host.spawn b ~name:"switcher" (fun () ->
          while not !stop do
            (* Wait until a write from [a] is in flight. *)
            while (not !stop) && Rdma.Qp.outstanding qa = 0 do
              Sim.Engine.sleep e 50
            done;
            if not !stop then
              match Rdma.Perm.change_qp_flags qb Rdma.Verbs.access_rw with
              | Ok () -> ()
              | Error `Qp_error ->
                incr errors;
                Rdma.Perm.restart_qp qb Rdma.Verbs.access_rw
          done);
      let i = ref 0 in
      while !i < 2_000 && !errors = 0 do
        incr i;
        Rdma.Qp.repair qa;
        Rdma.Qp.post_write qa ~wr_id:!i ~src:(Bytes.make 8 'x') ~src_off:0 ~len:8 ~mr:mr_b
          ~dst_off:0;
        ignore (Rdma.Cq.await cq_a)
      done;
      stop := true;
      check "hazard observed" true (!errors > 0))

let fast_slow_switch_always_lands () =
  Util.run_fiber (fun e ->
      let _a, _b, qa, _qb, _, _ = Util.qp_pair e in
      Rdma.Perm.fast_slow_switch qa Rdma.Verbs.access_ro;
      check "state operational" true (Rdma.Qp.state qa = Rdma.Verbs.Rts);
      check "flags applied" true ((Rdma.Qp.access qa).Rdma.Verbs.remote_write = false))

let suite =
  [
    ("mr register and bounds", `Quick, mr_register_and_bounds);
    ("mr typed access", `Quick, mr_typed_access);
    ("mr alias shares memory", `Quick, mr_alias_shares_memory);
    ("write delivers data", `Quick, write_delivers_data);
    ("write takes time", `Quick, write_takes_time);
    ("write inline snapshot", `Quick, write_inline_snapshot);
    ("read returns data", `Quick, read_returns_data);
    ("read snapshot at arrival", `Quick, read_snapshot_at_arrival);
    ("writes fifo order", `Quick, writes_fifo_order);
    ("payload size affects latency", `Quick, payload_size_affects_latency);
    ("write denied by qp flags", `Quick, write_denied_by_qp_flags);
    ("read allowed when write denied", `Quick, read_allowed_when_write_denied);
    ("write denied by mr flags", `Quick, write_denied_by_mr_flags);
    ("write denied out of bounds", `Quick, write_denied_out_of_bounds);
    ("write denied invalidated mr", `Quick, write_denied_invalidated_mr);
    ("post on err qp flushes", `Quick, post_on_err_qp_flushes);
    ("repair after error", `Quick, repair_after_error);
    ("paused process still serves", `Quick, paused_process_still_serves);
    ("stopped process still serves", `Quick, stopped_process_still_serves);
    ("dead host times out", `Quick, dead_host_times_out);
    ("partition times out", `Quick, partition_times_out);
    ("write hook fires", `Quick, write_hook_fires);
    ("send/recv roundtrip", `Quick, send_recv_roundtrip);
    ("send before recv waits (RNR)", `Quick, send_before_recv_waits);
    ("sends consume recvs in order", `Quick, sends_consume_recvs_in_order);
    ("send overflow breaks connection", `Quick, send_overflow_breaks_connection);
    ("send to dead host times out", `Quick, send_to_dead_host_times_out);
    ("perm: qp flags quiescent", `Quick, qp_flags_switch_quiescent);
    ("perm: qp restart", `Quick, qp_restart_switch);
    ("perm: rereg scales with size", `Quick, rereg_scales_with_size);
    ("perm: flags hazard with inflight", `Quick, flags_hazard_with_inflight);
    ("perm: fast-slow always lands", `Quick, fast_slow_switch_always_lands);
  ]
