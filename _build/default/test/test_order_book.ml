(* Tests for the limit order book (the Liquibook-equivalent matching
   engine): price-time priority, partial fills, market orders, cancels,
   replaces, conservation invariants, and checkpointing. *)

open Apps

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let has_fill ~taker ~maker ~price ~qty events =
  List.exists
    (function
      | Order_book.Filled f ->
        f.taker = taker && f.maker = maker && f.price = price && f.qty = qty
      | _ -> false)
    events

let resting_order_accepted () =
  let b = Order_book.create () in
  let ev = Order_book.submit_limit b ~id:1 ~side:Order_book.Buy ~price:100 ~qty:10 in
  check "accepted" true (List.mem (Order_book.Accepted { id = 1 }) ev);
  Alcotest.(check (option (pair int int))) "best bid" (Some (100, 10)) (Order_book.best_bid b);
  Alcotest.(check (option (pair int int))) "no ask" None (Order_book.best_ask b)

let cross_full_fill () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:10);
  let ev = Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:100 ~qty:10 in
  check "fill at 100x10" true (has_fill ~taker:2 ~maker:1 ~price:100 ~qty:10 ev);
  check "maker done" true (List.mem (Order_book.Done { id = 1 }) ev);
  check "taker done" true (List.mem (Order_book.Done { id = 2 }) ev);
  check_int "book empty" 0 (Order_book.open_order_count b)

let no_cross_when_prices_apart () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:101 ~qty:5);
  let ev = Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:99 ~qty:5 in
  check "no fills" true
    (List.for_all (function Order_book.Filled _ -> false | _ -> true) ev);
  check_int "both resting" 2 (Order_book.open_order_count b)

let partial_fill_rests_remainder () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:4);
  let ev = Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:100 ~qty:10 in
  check "partial fill" true (has_fill ~taker:2 ~maker:1 ~price:100 ~qty:4 ev);
  check "remainder accepted" true (List.mem (Order_book.Accepted { id = 2 }) ev);
  Alcotest.(check (option (pair int int))) "6 left bid" (Some (100, 6)) (Order_book.best_bid b)

let price_priority () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:102 ~qty:5);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Sell ~price:100 ~qty:5);
  ignore (Order_book.submit_limit b ~id:3 ~side:Order_book.Sell ~price:101 ~qty:5);
  let ev = Order_book.submit_limit b ~id:4 ~side:Order_book.Buy ~price:103 ~qty:12 in
  (* Fills walk the ask side best-first: 100, 101, then 2 of 102. *)
  check "fills 100 first" true (has_fill ~taker:4 ~maker:2 ~price:100 ~qty:5 ev);
  check "then 101" true (has_fill ~taker:4 ~maker:3 ~price:101 ~qty:5 ev);
  check "then 102 partially" true (has_fill ~taker:4 ~maker:1 ~price:102 ~qty:2 ev);
  Alcotest.(check (option (pair int int))) "3 left at 102" (Some (102, 3)) (Order_book.best_ask b)

let time_priority_fifo () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:5);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Sell ~price:100 ~qty:5);
  let ev = Order_book.submit_limit b ~id:3 ~side:Order_book.Buy ~price:100 ~qty:5 in
  check "first in first matched" true (has_fill ~taker:3 ~maker:1 ~price:100 ~qty:5 ev);
  check "second untouched" true
    (List.for_all
       (function Order_book.Filled f -> f.maker <> 2 | _ -> true)
       ev)

let taker_gets_maker_price () =
  (* An aggressive buy above the ask trades at the ask (maker) price. *)
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:5);
  let ev = Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:105 ~qty:5 in
  check "maker price" true (has_fill ~taker:2 ~maker:1 ~price:100 ~qty:5 ev)

let market_order_fills_and_never_rests () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:3);
  let ev = Order_book.submit_market b ~id:2 ~side:Order_book.Buy ~qty:10 in
  check "filled what was there" true (has_fill ~taker:2 ~maker:1 ~price:100 ~qty:3 ev);
  check "remainder cancelled (IOC)" true
    (List.mem (Order_book.Cancelled { id = 2; remaining = 7 }) ev);
  check_int "nothing rests" 0 (Order_book.open_order_count b)

let market_order_empty_book_rejected () =
  let b = Order_book.create () in
  let ev = Order_book.submit_market b ~id:1 ~side:Order_book.Sell ~qty:5 in
  check "rejected" true
    (List.exists (function Order_book.Rejected _ -> true | _ -> false) ev)

let cancel_removes_order () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Buy ~price:100 ~qty:10);
  let ev = Order_book.cancel b ~id:1 in
  check "cancelled with remaining" true
    (List.mem (Order_book.Cancelled { id = 1; remaining = 10 }) ev);
  check_int "book empty" 0 (Order_book.open_order_count b);
  Alcotest.(check (option (pair int int))) "no bid" None (Order_book.best_bid b)

let cancel_unknown_rejected () =
  let b = Order_book.create () in
  let ev = Order_book.cancel b ~id:99 in
  check "rejected" true
    (List.exists (function Order_book.Rejected _ -> true | _ -> false) ev)

let duplicate_id_rejected () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Buy ~price:100 ~qty:10);
  let ev = Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:200 ~qty:1 in
  check "rejected" true
    (List.exists (function Order_book.Rejected _ -> true | _ -> false) ev);
  check_int "book unchanged" 1 (Order_book.open_order_count b)

let replace_size_decrease_keeps_priority () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:10);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Sell ~price:100 ~qty:10);
  ignore (Order_book.replace b ~id:1 ~price:None ~qty:5);
  let ev = Order_book.submit_limit b ~id:3 ~side:Order_book.Buy ~price:100 ~qty:5 in
  check "order 1 kept time priority" true (has_fill ~taker:3 ~maker:1 ~price:100 ~qty:5 ev)

let replace_size_increase_loses_priority () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:100 ~qty:5);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Sell ~price:100 ~qty:5);
  ignore (Order_book.replace b ~id:1 ~price:None ~qty:10);
  let ev = Order_book.submit_limit b ~id:3 ~side:Order_book.Buy ~price:100 ~qty:5 in
  check "order 2 now first" true (has_fill ~taker:3 ~maker:2 ~price:100 ~qty:5 ev)

let replace_price_can_match () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Sell ~price:105 ~qty:5);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:100 ~qty:5);
  let ev = Order_book.replace b ~id:1 ~price:(Some 100) ~qty:5 in
  check "re-priced order matched" true (has_fill ~taker:1 ~maker:2 ~price:100 ~qty:5 ev);
  check_int "book empty" 0 (Order_book.open_order_count b)

let depth_reports_levels () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Buy ~price:99 ~qty:1);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Buy ~price:100 ~qty:2);
  ignore (Order_book.submit_limit b ~id:3 ~side:Order_book.Buy ~price:98 ~qty:3);
  ignore (Order_book.submit_limit b ~id:4 ~side:Order_book.Buy ~price:100 ~qty:4);
  Alcotest.(check (list (pair int int)))
    "best-first with aggregation"
    [ (100, 6); (99, 1) ]
    (Order_book.depth b Order_book.Buy ~levels:2)

let conservation_random_flow () =
  (* Property: submitted = open + traded + cancelled quantities. *)
  let rng = Sim.Rng.create 77L in
  let b = Order_book.create () in
  let submitted = ref 0 and cancelled = ref 0 and ioc_cancelled = ref 0 in
  let live_ids = ref [] in
  for id = 1 to 2_000 do
    let r = Sim.Rng.float rng in
    if r < 0.75 then begin
      let side = if Sim.Rng.bool rng then Order_book.Buy else Order_book.Sell in
      let qty = 1 + Sim.Rng.int rng 20 in
      let price = 95 + Sim.Rng.int rng 10 in
      submitted := !submitted + qty;
      let ev = Order_book.submit_limit b ~id ~side ~price ~qty in
      if List.mem (Order_book.Accepted { id }) ev then live_ids := id :: !live_ids
    end
    else if r < 0.9 && !live_ids <> [] then begin
      match !live_ids with
      | id' :: rest ->
        live_ids := rest;
        List.iter
          (function
            | Order_book.Cancelled { remaining; _ } -> cancelled := !cancelled + remaining
            | _ -> ())
          (Order_book.cancel b ~id:id')
      | [] -> ()
    end
    else begin
      let side = if Sim.Rng.bool rng then Order_book.Buy else Order_book.Sell in
      let qty = 1 + Sim.Rng.int rng 10 in
      submitted := !submitted + qty;
      List.iter
        (function
          | Order_book.Cancelled { remaining; _ } -> ioc_cancelled := !ioc_cancelled + remaining
          | Order_book.Rejected _ -> ioc_cancelled := !ioc_cancelled + qty
          | _ -> ())
        (Order_book.submit_market b ~id ~side ~qty)
    end
  done;
  let open_qty = Order_book.open_qty b Order_book.Buy + Order_book.open_qty b Order_book.Sell in
  let traded = 2 * Order_book.volume_traded b in
  check_int "conservation" !submitted (open_qty + traded + !cancelled + !ioc_cancelled);
  (* The book never crosses itself. *)
  (match Order_book.best_bid b, Order_book.best_ask b with
  | Some (bid, _), Some (ask, _) -> check "bid < ask" true (bid < ask)
  | _ -> ())

let snapshot_restore_roundtrip () =
  let b = Order_book.create () in
  ignore (Order_book.submit_limit b ~id:1 ~side:Order_book.Buy ~price:99 ~qty:10);
  ignore (Order_book.submit_limit b ~id:2 ~side:Order_book.Sell ~price:101 ~qty:7);
  ignore (Order_book.submit_limit b ~id:3 ~side:Order_book.Buy ~price:99 ~qty:3);
  ignore (Order_book.submit_limit b ~id:4 ~side:Order_book.Buy ~price:100 ~qty:1);
  let b' = Order_book.restore (Order_book.snapshot b) in
  Alcotest.(check (option (pair int int))) "bid" (Order_book.best_bid b) (Order_book.best_bid b');
  Alcotest.(check (option (pair int int))) "ask" (Order_book.best_ask b) (Order_book.best_ask b');
  check_int "orders" (Order_book.open_order_count b) (Order_book.open_order_count b');
  check_int "trades counter" (Order_book.trades_executed b) (Order_book.trades_executed b');
  (* Restored book behaves identically. *)
  let ev = Order_book.submit_limit b' ~id:5 ~side:Order_book.Sell ~price:99 ~qty:12 in
  check "fifo after restore: id1 first at 99" true (has_fill ~taker:5 ~maker:1 ~price:99 ~qty:10 ev)

let suite =
  [
    ("resting order accepted", `Quick, resting_order_accepted);
    ("cross full fill", `Quick, cross_full_fill);
    ("no cross when prices apart", `Quick, no_cross_when_prices_apart);
    ("partial fill rests remainder", `Quick, partial_fill_rests_remainder);
    ("price priority", `Quick, price_priority);
    ("time priority fifo", `Quick, time_priority_fifo);
    ("taker gets maker price", `Quick, taker_gets_maker_price);
    ("market order fills, never rests", `Quick, market_order_fills_and_never_rests);
    ("market order on empty book rejected", `Quick, market_order_empty_book_rejected);
    ("cancel removes order", `Quick, cancel_removes_order);
    ("cancel unknown rejected", `Quick, cancel_unknown_rejected);
    ("duplicate id rejected", `Quick, duplicate_id_rejected);
    ("replace: size decrease keeps priority", `Quick, replace_size_decrease_keeps_priority);
    ("replace: size increase loses priority", `Quick, replace_size_increase_loses_priority);
    ("replace: price change can match", `Quick, replace_price_can_match);
    ("depth reports levels", `Quick, depth_reports_levels);
    ("conservation under random flow", `Quick, conservation_random_flow);
    ("snapshot/restore roundtrip", `Quick, snapshot_restore_roundtrip);
  ]
