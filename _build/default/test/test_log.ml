(* Tests for the consensus log layout: slots, canary discipline, circular
   indexing, header fields. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_log ?(slots = 16) ?(value_cap = 64) () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr =
    Rdma.Mr.register h ~size:(Mu.Log.required_size ~slots ~value_cap)
      ~access:Rdma.Verbs.access_rw
  in
  Mu.Log.attach mr ~slots ~value_cap

let header_fields () =
  let log = make_log () in
  check_int "fuo starts 0" 0 (Mu.Log.fuo log);
  Alcotest.(check int64) "minProposal starts 0" 0L (Mu.Log.min_proposal log);
  Mu.Log.set_fuo log 42;
  Mu.Log.set_min_proposal log 7L;
  check_int "fuo" 42 (Mu.Log.fuo log);
  Alcotest.(check int64) "minProposal" 7L (Mu.Log.min_proposal log)

let empty_slot_reads_none () =
  let log = make_log () in
  for i = 0 to 15 do
    check "empty" true (Mu.Log.read_slot log i = None)
  done

let write_read_roundtrip () =
  let log = make_log () in
  Mu.Log.write_slot_local log 3 ~proposal:9L ~value:(Bytes.of_string "value");
  match Mu.Log.read_slot log 3 with
  | Some { Mu.Log.proposal; value } ->
    Alcotest.(check int64) "proposal" 9L proposal;
    Alcotest.(check string) "value" "value" (Bytes.to_string value)
  | None -> Alcotest.fail "slot empty"

let empty_value_roundtrip () =
  let log = make_log () in
  Mu.Log.write_slot_local log 0 ~proposal:1L ~value:Bytes.empty;
  match Mu.Log.read_slot log 0 with
  | Some { Mu.Log.value; _ } -> check_int "empty payload" 0 (Bytes.length value)
  | None -> Alcotest.fail "slot empty"

let max_value_roundtrip () =
  let log = make_log ~value_cap:64 () in
  let v = Bytes.make 64 'm' in
  Mu.Log.write_slot_local log 1 ~proposal:2L ~value:v;
  match Mu.Log.read_slot log 1 with
  | Some { Mu.Log.value; _ } -> Alcotest.(check bytes) "full payload" v value
  | None -> Alcotest.fail "slot empty"

let oversized_value_rejected () =
  let log = make_log ~value_cap:64 () in
  check "raises" true
    (try
       ignore (Mu.Log.encode_slot log ~proposal:1L ~value:(Bytes.make 65 'x'));
       false
     with Invalid_argument _ -> true)

let zero_proposal_rejected () =
  let log = make_log () in
  check "raises" true
    (try
       ignore (Mu.Log.encode_slot log ~proposal:0L ~value:Bytes.empty);
       false
     with Invalid_argument _ -> true)

let canary_guards_incomplete_entry () =
  (* Write the entry image except its final (canary) byte: the reader must
     treat the slot as empty. *)
  let log = make_log () in
  let img = Mu.Log.encode_slot log ~proposal:5L ~value:(Bytes.of_string "abc") in
  let torn = Bytes.sub img 0 (Bytes.length img - 1) in
  Mu.Log.write_slot_raw_local log 2 torn;
  check "incomplete entry invisible" true (Mu.Log.read_slot log 2 = None);
  Mu.Log.write_slot_raw_local log 2 img;
  check "complete entry visible" true (Mu.Log.read_slot log 2 <> None)

let canary_is_final_byte () =
  let log = make_log () in
  let img = Mu.Log.encode_slot log ~proposal:5L ~value:(Bytes.of_string "abcd") in
  check "last byte is the canary" true (Bytes.get img (Bytes.length img - 1) = '\001');
  check_int "image length" (Mu.Log.entry_bytes ~value_len:4) (Bytes.length img)

let zero_slot_erases () =
  let log = make_log () in
  Mu.Log.write_slot_local log 4 ~proposal:3L ~value:(Bytes.of_string "x");
  Mu.Log.zero_slot_local log 4;
  check "erased" true (Mu.Log.read_slot log 4 = None)

let circular_indexing () =
  let log = make_log ~slots:8 () in
  check_int "wraps" (Mu.Log.slot_offset log 1) (Mu.Log.slot_offset log 9);
  check "distinct within capacity" true
    (Mu.Log.slot_offset log 1 <> Mu.Log.slot_offset log 2);
  (* Reuse after zeroing: index 9 lands on index 1's physical slot. *)
  Mu.Log.write_slot_local log 1 ~proposal:1L ~value:(Bytes.of_string "old");
  Mu.Log.zero_slot_local log 1;
  Mu.Log.write_slot_local log 9 ~proposal:2L ~value:(Bytes.of_string "new");
  match Mu.Log.read_slot log 9 with
  | Some { Mu.Log.value; _ } -> Alcotest.(check string) "new entry" "new" (Bytes.to_string value)
  | None -> Alcotest.fail "slot empty"

let stale_canary_would_lie_without_zeroing () =
  (* Demonstrates why recycling must zero slots before reuse (§5.3): a
     torn (canary-less) write of a short entry over a longer stale one
     finds the old entry's residual bytes where its canary should be, and
     the incomplete entry becomes visible. Zeroing the slot first removes
     the hazard. *)
  let log = make_log ~slots:4 () in
  let long_v = Bytes.make 40 'L' in
  Mu.Log.write_slot_local log 0 ~proposal:1L ~value:long_v;
  let short_img = Mu.Log.encode_slot log ~proposal:2L ~value:(Bytes.of_string "s") in
  let torn = Bytes.sub short_img 0 (Bytes.length short_img - 1) in
  Mu.Log.write_slot_raw_local log 4 torn;
  (match Mu.Log.read_slot log 4 with
  | Some { Mu.Log.proposal; _ } ->
    check "hazard: torn entry visible over stale bytes" true (proposal = 2L)
  | None -> Alcotest.fail "expected the hazard to manifest without zeroing");
  (* Proper discipline: zero, then write. *)
  Mu.Log.zero_slot_local log 4;
  Mu.Log.write_slot_raw_local log 4 torn;
  check "torn entry invisible after zeroing" true (Mu.Log.read_slot log 4 = None)

let decode_slot_roundtrip () =
  let log = make_log () in
  let img = Mu.Log.encode_slot log ~proposal:11L ~value:(Bytes.of_string "roundtrip") in
  match Mu.Log.decode_slot img with
  | Some { Mu.Log.proposal; value } ->
    Alcotest.(check int64) "proposal" 11L proposal;
    Alcotest.(check string) "value" "roundtrip" (Bytes.to_string value)
  | None -> Alcotest.fail "decode failed"

let decode_garbage_is_none () =
  check "short" true (Mu.Log.decode_slot (Bytes.make 4 'x') = None);
  check "zeros" true (Mu.Log.decode_slot (Bytes.make 64 '\000') = None)

let required_size_consistent () =
  let slots = 32 and value_cap = 100 in
  let log = make_log ~slots ~value_cap () in
  check "last slot in bounds" true
    (Mu.Log.slot_offset log (slots - 1) + Mu.Log.slot_size log
    <= Mu.Log.required_size ~slots ~value_cap)

let attach_rejects_small_mr () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr = Rdma.Mr.register h ~size:64 ~access:Rdma.Verbs.access_rw in
  check "raises" true
    (try
       ignore (Mu.Log.attach mr ~slots:100 ~value_cap:1024);
       false
     with Invalid_argument _ -> true)

let checksum_canary_detects_corruption () =
  (* The Flag canary relies on left-to-right DMA: a corrupted middle byte
     with an intact trailing flag goes unnoticed. The Checksum canary
     (§4.2's alternative) catches it. *)
  let make mode =
    let e = Util.engine () in
    let h = Util.host e ~id:0 in
    let mr =
      Rdma.Mr.register h ~size:(Mu.Log.required_size ~slots:4 ~value_cap:64)
        ~access:Rdma.Verbs.access_rw
    in
    Mu.Log.attach ~canary:mode mr ~slots:4 ~value_cap:64
  in
  let corrupt_middle log =
    let img = Mu.Log.encode_slot log ~proposal:5L ~value:(Bytes.of_string "payload") in
    Bytes.set img 14 (Char.chr (Char.code (Bytes.get img 14) lxor 0xff));
    Mu.Log.write_slot_raw_local log 0 img;
    Mu.Log.read_slot log 0
  in
  let flag_log = make Mu.Log.Flag in
  check "flag mode trusts the trailing byte" true (corrupt_middle flag_log <> None);
  let sum_log = make Mu.Log.Checksum in
  check "checksum mode rejects corruption" true (corrupt_middle sum_log = None)

let checksum_canary_roundtrip () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  let mr =
    Rdma.Mr.register h ~size:(Mu.Log.required_size ~slots:4 ~value_cap:64)
      ~access:Rdma.Verbs.access_rw
  in
  let log = Mu.Log.attach ~canary:Mu.Log.Checksum mr ~slots:4 ~value_cap:64 in
  Mu.Log.write_slot_local log 1 ~proposal:3L ~value:(Bytes.of_string "ok");
  (match Mu.Log.read_slot log 1 with
  | Some { Mu.Log.value; _ } -> Alcotest.(check string) "value" "ok" (Bytes.to_string value)
  | None -> Alcotest.fail "checksum entry unreadable");
  (* Torn write (missing final byte) still treated as absent. *)
  let img = Mu.Log.encode_slot log ~proposal:4L ~value:(Bytes.of_string "torn") in
  Mu.Log.zero_slot_local log 2;
  Mu.Log.write_slot_raw_local log 2 (Bytes.sub img 0 (Bytes.length img - 1));
  check "torn write invisible" true (Mu.Log.read_slot log 2 = None)

let suite =
  [
    ("header fields", `Quick, header_fields);
    ("empty slot reads none", `Quick, empty_slot_reads_none);
    ("write/read roundtrip", `Quick, write_read_roundtrip);
    ("empty value roundtrip", `Quick, empty_value_roundtrip);
    ("max value roundtrip", `Quick, max_value_roundtrip);
    ("oversized value rejected", `Quick, oversized_value_rejected);
    ("zero proposal rejected", `Quick, zero_proposal_rejected);
    ("canary guards incomplete entry", `Quick, canary_guards_incomplete_entry);
    ("canary is final byte", `Quick, canary_is_final_byte);
    ("zero slot erases", `Quick, zero_slot_erases);
    ("circular indexing", `Quick, circular_indexing);
    ("recycling zeroing rationale", `Quick, stale_canary_would_lie_without_zeroing);
    ("decode slot roundtrip", `Quick, decode_slot_roundtrip);
    ("decode garbage is none", `Quick, decode_garbage_is_none);
    ("required size consistent", `Quick, required_size_consistent);
    ("attach rejects small mr", `Quick, attach_rejects_small_mr);
    ("checksum canary detects corruption", `Quick, checksum_canary_detects_corruption);
    ("checksum canary roundtrip", `Quick, checksum_canary_roundtrip);
  ]
