(* Tests for the SMR façade: client path, batching, pipelining, response
   delivery, replayer integration, recycling, and failover behaviour at
   the system level. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counting_app () =
  let log = ref [] in
  ( log,
    fun _id ->
      Mu.Smr.stateless_app (fun req ->
          log := Bytes.to_string req :: !log;
          Bytes.of_string ("ack:" ^ Bytes.to_string req)) )

let with_smr ?(cfg = Mu.Config.default) ?(make_app = fun _ -> Mu.Smr.stateless_app Fun.id) f
    =
  let e = Util.engine () in
  let smr = Mu.Smr.create e Util.default_cal cfg ~make_app in
  Mu.Smr.start smr;
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let batch_roundtrip () =
  let payloads = [ Bytes.of_string "a"; Bytes.empty; Bytes.of_string "ccc" ] in
  match Mu.Smr.decode_batch (Mu.Smr.encode_batch payloads) with
  | Some got ->
    Alcotest.(check (list string))
      "roundtrip"
      (List.map Bytes.to_string payloads)
      (List.map Bytes.to_string got)
  | None -> Alcotest.fail "decode failed"

let empty_batch_roundtrip () =
  match Mu.Smr.decode_batch (Mu.Smr.encode_batch []) with
  | Some [] -> ()
  | Some _ | None -> Alcotest.fail "expected empty batch"

let submit_gets_response () =
  with_smr
    ~make_app:(fun _ -> Mu.Smr.stateless_app (fun req -> Bytes.cat (Bytes.of_string "r:") req))
    (fun e smr ->
      Mu.Smr.wait_live smr;
      let resp = Mu.Smr.submit smr (Bytes.of_string "ping") in
      Alcotest.(check string) "response" "r:ping" (Bytes.to_string resp);
      ignore e)

let submissions_execute_in_order () =
  let log, make_app = counting_app () in
  with_smr ~make_app (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 20 do
        ignore (Mu.Smr.submit smr (Bytes.of_string (string_of_int i)))
      done;
      ignore e);
  let leader_view = List.rev !log in
  (* Every replica applied; the leader applied each exactly once, in
     order. With 3 replicas each request appears up to 3 times overall;
     check the leader's subsequence by deduplication order. *)
  let seen = Hashtbl.create 16 in
  let firsts =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s then false
        else begin
          Hashtbl.add seen s ();
          true
        end)
      leader_view
  in
  Alcotest.(check (list string))
    "first occurrences in submission order"
    (List.init 20 (fun i -> string_of_int (i + 1)))
    firsts

let followers_apply_too () =
  let applied = Array.make 3 0 in
  with_smr
    ~make_app:(fun id ->
      Mu.Smr.stateless_app (fun _ ->
          applied.(id) <- applied.(id) + 1;
          Bytes.empty))
    (fun e smr ->
      Mu.Smr.wait_live smr;
      for _ = 1 to 10 do
        ignore (Mu.Smr.submit smr (Bytes.of_string "x"))
      done;
      (* One more commit so piggybacking releases the 10th, then wait. *)
      ignore (Mu.Smr.submit smr (Bytes.of_string "last"));
      Sim.Engine.sleep e 2_000_000;
      check "replica 1 applied >= 10" true (applied.(1) >= 10);
      check "replica 2 applied >= 10" true (applied.(2) >= 10))

let batching_coalesces () =
  let cfg = { Mu.Config.default with Mu.Config.max_batch = 8 } in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      let leader = Option.get (Mu.Smr.leader smr) in
      let fuo_before = Mu.Log.fuo leader.Mu.Replica.log in
      (* Submit a burst asynchronously, then wait for all responses. *)
      let ivs =
        List.init 16 (fun i -> Mu.Smr.submit_async smr (Bytes.of_string (string_of_int i)))
      in
      List.iter (fun iv -> ignore (Sim.Engine.Ivar.read iv)) ivs;
      let slots_used = Mu.Log.fuo leader.Mu.Replica.log - fuo_before in
      check
        (Printf.sprintf "batched into fewer slots (%d for 16 requests)" slots_used)
        true (slots_used < 16);
      ignore e)

let pipelining_works () =
  let cfg = { Mu.Config.default with Mu.Config.max_outstanding = 4 } in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      let ivs =
        List.init 40 (fun i -> Mu.Smr.submit_async smr (Bytes.of_string (string_of_int i)))
      in
      List.iter (fun iv -> ignore (Sim.Engine.Ivar.read iv)) ivs;
      (* All committed and in log order on the leader. *)
      let leader = Option.get (Mu.Smr.leader smr) in
      check "all requests committed" true (Mu.Log.fuo leader.Mu.Replica.log >= 40);
      ignore e)

let pipelined_throughput_exceeds_serial () =
  let run cfg n =
    with_smr ~cfg (fun e smr ->
        Mu.Smr.wait_live smr;
        let t0 = Sim.Engine.now e in
        let ivs = List.init n (fun _ -> Mu.Smr.submit_async smr (Bytes.make 64 'x')) in
        List.iter (fun iv -> ignore (Sim.Engine.Ivar.read iv)) ivs;
        Sim.Engine.now e - t0)
  in
  let serial = run Mu.Config.default 200 in
  let piped = run { Mu.Config.default with Mu.Config.max_outstanding = 8 } 200 in
  check
    (Printf.sprintf "pipelining faster (serial %dns vs piped %dns)" serial piped)
    true
    (piped * 3 < serial * 2)

let failover_under_load () =
  let log, make_app = counting_app () in
  with_smr ~make_app (fun e smr ->
      Mu.Smr.wait_live smr;
      ignore (Mu.Smr.submit smr (Bytes.of_string "pre"));
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      (* The request retransmits to the new leader and commits. *)
      let resp = Mu.Smr.submit smr (Bytes.of_string "during") in
      check "committed during failover" true (Bytes.length resp >= 0);
      let r1 = Mu.Smr.replica smr 1 in
      check "new leader serving" true (Mu.Replica.is_leader r1);
      Sim.Host.resume r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r0) e;
      let resp2 = Mu.Smr.submit smr (Bytes.of_string "after") in
      ignore resp2;
      check "requests were executed" true (List.mem "during" !log && List.mem "after" !log))

let no_unique_leader_during_transition () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      (* Immediately after the pause, r0 still claims leadership and no
         other replica does: Smr.leader reports it; after detection, both
         r0 (stale) and r1 claim it, so [leader] is None until r0 resumes
         and demotes. *)
      Sim.Engine.sleep e 1_500_000;
      check "two claimants -> no unique leader" true (Mu.Smr.leader smr = None);
      Sim.Host.resume r0.Mu.Replica.host;
      Util.wait_for
        (fun () ->
          match Mu.Smr.leader smr with Some r -> r.Mu.Replica.id = 0 | None -> false)
        e)

let recycling_under_smr_load () =
  let cfg =
    { Mu.Config.default with Mu.Config.log_slots = 256; recycle_slack = 64;
      recycle_interval = 200_000 }
  in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      for _ = 1 to 600 do
        ignore (Mu.Smr.submit smr (Bytes.make 32 'r'))
      done;
      let leader = Option.get (Mu.Smr.leader smr) in
      check "wrapped the log several times" true (Mu.Log.fuo leader.Mu.Replica.log > 512);
      check "recycler kept up" true (leader.Mu.Replica.zeroed_up_to > 256);
      ignore e)

let recycler_respects_unconfirmed_followers () =
  (* Regression: a replica outside the confirmed-followers set (late
     permission ack after a leadership change) must still hold back log
     recycling; otherwise the next leader change copies recycled (empty)
     slots into its log — the kv_failover crash. Repeated fail-overs with
     aggressive recycling under load must never create a hole. *)
  let cfg =
    { Mu.Config.default with Mu.Config.log_slots = 512; recycle_slack = 64;
      recycle_interval = 300_000 }
  in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      for round = 1 to 3 do
        for _ = 1 to 120 do
          ignore (Mu.Smr.submit smr (Bytes.make 32 'z'))
        done;
        let leader = Option.get (Mu.Smr.leader smr) in
        Sim.Host.pause leader.Mu.Replica.host;
        (* Keep the load up during fail-over. *)
        for _ = 1 to 30 do
          ignore (Mu.Smr.submit smr (Bytes.make 32 'z'))
        done;
        Sim.Host.resume leader.Mu.Replica.host;
        Util.wait_for
          (fun () ->
            match Mu.Smr.leader smr with
            | Some r -> not r.Mu.Replica.need_new_followers
            | None -> false)
          e;
        ignore round
      done;
      (* No replica may have an empty slot between its applied index and
         its FUO. *)
      Array.iter
        (fun (r : Mu.Replica.t) ->
          for i = r.Mu.Replica.applied to Mu.Log.fuo r.Mu.Replica.log - 1 do
            check
              (Printf.sprintf "no hole at %d on replica %d" i r.Mu.Replica.id)
              true
              (Mu.Log.read_slot r.Mu.Replica.log i <> None)
          done)
        (Mu.Smr.replicas smr))

let checksum_canary_cluster_works () =
  let cfg = { Mu.Config.default with Mu.Config.checksum_canary = true } in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 20 do
        ignore (Mu.Smr.submit smr (Bytes.of_string (string_of_int i)))
      done;
      (* Fail over once under checksum canaries too. *)
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      ignore (Mu.Smr.submit smr (Bytes.of_string "during"));
      Sim.Host.resume r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r0) e;
      ignore (Mu.Smr.submit smr (Bytes.of_string "after"));
      Sim.Engine.sleep e 2_000_000;
      Alcotest.(check (list string))
        "invariants hold" []
        (List.map
           (Fmt.str "%a" Mu.Invariants.pp_violation)
           (Mu.Invariants.check_all (Mu.Smr.replicas smr))))

let sharded_commuting_ops () =
  let e = Util.engine () in
  let per_shard_counts = Array.make 2 0 in
  let s =
    Mu.Sharded.create e Util.default_cal Mu.Config.default ~shards:2
      ~make_app:(fun ~shard ~replica:_ ->
        Mu.Smr.stateless_app (fun _ ->
            per_shard_counts.(shard) <- per_shard_counts.(shard) + 1;
            Bytes.empty))
  in
  Mu.Sharded.start s;
  let ok = ref false in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      Mu.Sharded.wait_live s;
      (* Same key always lands on the same shard. *)
      let k0 = "alpha" and k1 = "omega" in
      check "routing stable" true
        (Mu.Sharded.shard_of_key s k0 = Mu.Sharded.shard_of_key s k0);
      for _ = 1 to 10 do
        ignore (Mu.Sharded.submit s ~key:k0 (Bytes.of_string "x"));
        ignore (Mu.Sharded.submit s ~key:k1 (Bytes.of_string "y"))
      done;
      Sim.Engine.sleep e 2_000_000;
      (* 20 requests x 3 replicas, minus the per-shard tail entries that
         commit piggybacking holds back at followers. *)
      check "requests applied across the shards" true
        (per_shard_counts.(0) + per_shard_counts.(1) >= 50);
      ok := true;
      Mu.Sharded.stop s;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  check "finished" true !ok

let stop_halts_service () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      ignore (Mu.Smr.submit smr (Bytes.of_string "x"));
      Mu.Smr.stop smr;
      Sim.Engine.sleep e 5_000_000;
      let iv = Mu.Smr.submit_async ~retry:false smr (Bytes.of_string "y") in
      Sim.Engine.sleep e 5_000_000;
      check "no service after stop" false (Sim.Engine.Ivar.is_filled iv))

let suite =
  [
    ("batch roundtrip", `Quick, batch_roundtrip);
    ("empty batch roundtrip", `Quick, empty_batch_roundtrip);
    ("submit gets response", `Quick, submit_gets_response);
    ("submissions execute in order", `Quick, submissions_execute_in_order);
    ("followers apply too", `Quick, followers_apply_too);
    ("batching coalesces", `Quick, batching_coalesces);
    ("pipelining works", `Quick, pipelining_works);
    ("pipelined throughput exceeds serial", `Quick, pipelined_throughput_exceeds_serial);
    ("failover under load", `Quick, failover_under_load);
    ("no unique leader during transition", `Quick, no_unique_leader_during_transition);
    ("recycling under smr load", `Quick, recycling_under_smr_load);
    ("recycler respects unconfirmed followers", `Quick, recycler_respects_unconfirmed_followers);
    ("checksum canary cluster works", `Quick, checksum_canary_cluster_works);
    ("sharded commuting ops", `Quick, sharded_commuting_ops);
    ("stop halts service", `Quick, stop_halts_service);
  ]
