(* Tests for the KV store, the exchange codec/service, and the client
   transport models. *)

open Apps

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- KV store ------------------------------------------------------------ *)

let kv_basic_ops () =
  let s = Kv_store.create () in
  check "miss" true (Kv_store.apply s (Kv_store.Get { key = "a" }) = Kv_store.Not_found);
  check "put" true (Kv_store.apply s (Kv_store.Put { key = "a"; value = "1" }) = Kv_store.Stored);
  check "hit" true (Kv_store.apply s (Kv_store.Get { key = "a" }) = Kv_store.Value "1");
  check "overwrite" true
    (Kv_store.apply s (Kv_store.Put { key = "a"; value = "2" }) = Kv_store.Stored);
  check "new value" true (Kv_store.apply s (Kv_store.Get { key = "a" }) = Kv_store.Value "2");
  check "delete" true (Kv_store.apply s (Kv_store.Delete { key = "a" }) = Kv_store.Deleted);
  check "delete missing" true
    (Kv_store.apply s (Kv_store.Delete { key = "a" }) = Kv_store.Not_found);
  check_int "size" 0 (Kv_store.size s)

let kv_codec_roundtrip () =
  let cases =
    [
      Kv_store.Get { key = "some-key" };
      Kv_store.Put { key = "k"; value = String.make 300 'v' };
      Kv_store.Delete { key = "" };
    ]
  in
  List.iter
    (fun cmd ->
      match Kv_store.decode_command (Kv_store.encode_command ~client:7 ~req_id:42 cmd) with
      | Some (7, 42, cmd') -> check "roundtrip" true (cmd = cmd')
      | _ -> Alcotest.fail "decode failed")
    cases

let kv_reply_codec_roundtrip () =
  List.iter
    (fun r ->
      check "reply roundtrip" true (Kv_store.decode_reply (Kv_store.encode_reply r) = Some r))
    [ Kv_store.Value "abc"; Kv_store.Value ""; Kv_store.Not_found; Kv_store.Stored; Kv_store.Deleted ]

let kv_codec_rejects_garbage () =
  check "empty" true (Kv_store.decode_command Bytes.empty = None);
  check "junk" true (Kv_store.decode_command (Bytes.of_string "ZZZZZZZZZZZZ") = None)

let kv_dedup_suppresses_duplicates () =
  let s = Kv_store.create () in
  let cmd = Kv_store.Put { key = "x"; value = "1" } in
  ignore (Kv_store.apply_dedup s ~client:1 ~req_id:5 cmd);
  ignore (Kv_store.apply s (Kv_store.Put { key = "x"; value = "2" }));
  (* Re-delivery of request 5 must not clobber the newer value. *)
  let r = Kv_store.apply_dedup s ~client:1 ~req_id:5 cmd in
  check "cached reply" true (r = Kv_store.Stored);
  check "state preserved" true (Kv_store.find s "x" = Some "2")

let kv_snapshot_restore () =
  let s = Kv_store.create () in
  for i = 1 to 100 do
    ignore (Kv_store.apply s (Kv_store.Put { key = string_of_int i; value = String.make i 'x' }))
  done;
  let s' = Kv_store.restore (Kv_store.snapshot s) in
  check_int "size" 100 (Kv_store.size s');
  check "spot check" true (Kv_store.find s' "37" = Some (String.make 37 'x'))

let kv_smr_app_end_to_end () =
  let app = Kv_store.smr_app () in
  let put = Kv_store.encode_command ~client:1 ~req_id:1 (Kv_store.Put { key = "k"; value = "v" }) in
  let get = Kv_store.encode_command ~client:1 ~req_id:2 (Kv_store.Get { key = "k" }) in
  ignore (app.Mu.Smr.apply put);
  check "get through app" true
    (Kv_store.decode_reply (app.Mu.Smr.apply get) = Some (Kv_store.Value "v"));
  (* Checkpoint/restore through the app interface. *)
  let app2 = Kv_store.smr_app () in
  app2.Mu.Smr.install (app.Mu.Smr.snapshot ());
  check "restored app serves" true
    (Kv_store.decode_reply (app2.Mu.Smr.apply get) = Some (Kv_store.Value "v"))

(* --- Exchange codec -------------------------------------------------------- *)

let exchange_command_roundtrip () =
  let cases =
    [
      Exchange.Limit { id = 1; side = Order_book.Buy; price = 100; qty = 5 };
      Exchange.Limit { id = 2; side = Order_book.Sell; price = 3; qty = 1 };
      Exchange.Market { id = 3; side = Order_book.Buy; qty = 9 };
      Exchange.Cancel { id = 4 };
      Exchange.Replace { id = 5; price = Some 7; qty = 2 };
      Exchange.Replace { id = 6; price = None; qty = 8 };
    ]
  in
  List.iter
    (fun cmd ->
      check "roundtrip" true (Exchange.decode_command (Exchange.encode_command cmd) = Some cmd))
    cases

let exchange_payload_is_32_bytes () =
  (* The paper's Liquibook integration uses 32-byte orders (Fig. 3). *)
  check_int "frame size" 32
    (Exchange.command_size (Exchange.Limit { id = 1; side = Order_book.Buy; price = 1; qty = 1 }))

let exchange_events_roundtrip () =
  let events =
    [
      Order_book.Accepted { id = 1 };
      Order_book.Filled { taker = 1; maker = 2; price = 100; qty = 5 };
      Order_book.Done { id = 2 };
      Order_book.Cancelled { id = 3; remaining = 4 };
      Order_book.Replaced { id = 5 };
      Order_book.Rejected { id = 6; reason = "" };
    ]
  in
  check "roundtrip" true (Exchange.decode_events (Exchange.encode_events events) = events)

let exchange_smr_app_matching () =
  let app = Exchange.smr_app () in
  let submit cmd = Exchange.decode_events (app.Mu.Smr.apply (Exchange.encode_command cmd)) in
  ignore (submit (Exchange.Limit { id = 1; side = Order_book.Sell; price = 100; qty = 5 }));
  let ev = submit (Exchange.Limit { id = 2; side = Order_book.Buy; price = 100; qty = 5 }) in
  check "trade through replicated app" true
    (List.exists
       (function
         | Order_book.Filled { taker = 2; maker = 1; price = 100; qty = 5 } -> true
         | _ -> false)
       ev)

let exchange_determinism_across_replicas () =
  (* The same command stream produces identical books — required for SMR. *)
  let rng = Sim.Rng.create 5L in
  let flow = Workload.Generators.order_flow rng in
  let cmds = List.init 1_000 (fun _ -> Workload.Generators.next_order flow) in
  let run () =
    let app = Exchange.smr_app () in
    List.map (fun c -> Bytes.to_string (app.Mu.Smr.apply (Exchange.encode_command c))) cmds
  in
  check "identical responses" true (run () = run ())

(* --- Transport ------------------------------------------------------------- *)

let transport_latency_scales () =
  let e = Util.engine () in
  let rng = Sim.Rng.split (Sim.Engine.rng e) in
  let median kind =
    let t = Transport.create kind Util.default_cal rng in
    let s = Sim.Stats.Samples.create () in
    for _ = 1 to 2_000 do
      Sim.Stats.Samples.add s (Transport.rtt_sample t)
    done;
    Sim.Stats.Samples.median s
  in
  let herd = median Transport.Herd_rdma in
  let erpc = median Transport.Erpc in
  let mcd = median Transport.Tcp_memcached in
  check "herd ~2us" true (herd > 1_500 && herd < 3_500);
  check "erpc a few us" true (erpc > 2_000 && erpc < 5_000);
  check "tcp ~100us" true (mcd > 80_000 && mcd < 200_000);
  check "ordering" true (herd < erpc && erpc < mcd)

let transport_legs_sum_to_rtt () =
  let e = Util.engine () in
  let t = Transport.create Transport.Erpc Util.default_cal (Sim.Rng.split (Sim.Engine.rng e)) in
  for _ = 1 to 100 do
    let rtt = Transport.rtt_sample t in
    check_int "split" rtt (Transport.request_leg t rtt + Transport.response_leg t rtt)
  done

let transport_payload_sizes () =
  check_int "liquibook 32B" 32 (Transport.payload_size Transport.Erpc);
  check_int "herd 50B" 50 (Transport.payload_size Transport.Herd_rdma);
  check_int "kv 64B" 64 (Transport.payload_size Transport.Tcp_memcached)

let suite =
  [
    ("kv basic ops", `Quick, kv_basic_ops);
    ("kv codec roundtrip", `Quick, kv_codec_roundtrip);
    ("kv reply codec roundtrip", `Quick, kv_reply_codec_roundtrip);
    ("kv codec rejects garbage", `Quick, kv_codec_rejects_garbage);
    ("kv dedup suppresses duplicates", `Quick, kv_dedup_suppresses_duplicates);
    ("kv snapshot/restore", `Quick, kv_snapshot_restore);
    ("kv smr app end to end", `Quick, kv_smr_app_end_to_end);
    ("exchange command roundtrip", `Quick, exchange_command_roundtrip);
    ("exchange payload is 32 bytes", `Quick, exchange_payload_is_32_bytes);
    ("exchange events roundtrip", `Quick, exchange_events_roundtrip);
    ("exchange smr app matching", `Quick, exchange_smr_app_matching);
    ("exchange determinism", `Quick, exchange_determinism_across_replicas);
    ("transport latency scales", `Quick, transport_latency_scales);
    ("transport legs sum to rtt", `Quick, transport_legs_sum_to_rtt);
    ("transport payload sizes", `Quick, transport_payload_sizes);
  ]
