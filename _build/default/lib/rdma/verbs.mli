(** Common types of the simulated RDMA verbs API (§2.3 of the paper).

    We model Reliable Connection (RC) queue pairs, memory regions with
    access flags, one-sided Read and Write, completion queues, and
    two-sided Send/Receive. Mu itself uses only Reads and Writes ("because
    of their lower latency", §2.3); Send/Receive exists for the two-sided
    comparison systems (APUS). *)

type access = { remote_read : bool; remote_write : bool }
(** Remote access rights. Local access is always allowed. *)

val access_none : access
val access_ro : access
val access_rw : access
val pp_access : access Fmt.t

(** QP states, as in ibverbs. Only RTS can post; only RTR/RTS accept
    incoming operations; ERR flushes everything (§5.2). *)
type qp_state = Reset | Init | Rtr | Rts | Err

val pp_qp_state : qp_state Fmt.t

(** Work-completion status. [Flushed] is returned for work posted to (or
    pending on) a QP in the ERR state — this is how a deposed leader
    observes that it lost write permission. *)
type wc_status =
  | Success
  | Remote_access_error  (** Responder denied the operation (permissions,
                             bounds, invalidated MR). *)
  | Operation_timeout  (** Responder NIC unreachable; fires after the RC
                           transport timeout. *)
  | Flushed  (** QP was in ERR at post time or failed while in flight. *)

val pp_wc_status : wc_status Fmt.t

type wc = {
  wr_id : int;
  kind : [ `Write | `Read | `Send | `Recv ];
  status : wc_status;
  byte_len : int;  (** Bytes transferred ([`Recv]: payload received). *)
}
(** Work completion: identifies the work request and its outcome. *)

val pp_wc : wc Fmt.t
