(** Permission-switching mechanisms and their cost model (§5.2, Fig. 2).

    RDMA offers three ways to grant/revoke a remote replica's write access;
    the paper measures all three (Fig. 2) and builds Mu's fast-slow path
    out of two of them:

    - {b QP access flags} ({!change_qp_flags}): ~120 µs, independent of MR
      size — but flipping flags with operations in flight "sometimes causes
      the QP to go into an error state".
    - {b QP state cycling} ({!restart_qp}): reset → init → RTR → RTS,
      ~10× slower than the flags method, always safe.
    - {b MR re-registration} ({!rereg_mr}): cost grows with the region
      size, reaching ~100 ms for a 4 GiB log.

    All functions must be called from a fiber of the QP/MR owner's host and
    consume the mechanism's latency there (the permission management thread
    blocks on the NIC/driver, §5.2). *)

val change_qp_flags : Qp.t -> Verbs.access -> (unit, [ `Qp_error ]) result
(** Fast path. Fails (QP moves to ERR) with probability 1/2 when the
    remote peer has operations in flight at switch time. *)

val restart_qp : Qp.t -> Verbs.access -> unit
(** Slow path: cycle the QP through reset/init/RTR/RTS and install the
    access flags. While cycling, arriving operations are denied. Always
    succeeds. *)

val rereg_mr : Mr.t -> Verbs.access -> unit
(** Re-register an MR with new flags; cost scales with its size. *)

val fast_slow_switch : Qp.t -> Verbs.access -> unit
(** Mu's production path (§5.2): try {!change_qp_flags}; on error fall
    back to {!restart_qp}. *)
