(** Completion queues.

    Each plane of a Mu replica has one CQ shared by that plane's QPs
    (§3.2). Fibers block on {!await} — the simulated analogue of polling
    the CQ; the poll-detection overhead is part of the completion
    timestamp, so blocking loses no fidelity. *)

type t

val create : Sim.Engine.t -> t
val push : t -> Verbs.wc -> unit
(** Used by the transport; not by protocol code. *)

val await : t -> Verbs.wc
(** Block until a completion is available. *)

val await_timeout : t -> int -> Verbs.wc option
(** Wait at most the given number of virtual ns. *)

val poll : t -> Verbs.wc option
val pending : t -> int
