(** QP exchange: out-of-band connection bootstrap.

    Real RDMA deployments exchange QP numbers, LIDs and rkeys over a side
    channel (TCP, or a connection manager) before RC communication can
    start; Mu's implementation ships such a layer (§6: "a QP exchange
    layer, making it straightforward to create, manage, and communicate QP
    information"). This module is the simulated equivalent: a registry
    where a host {e listens} on a named service and peers {e dial} it,
    yielding a connected QP pair, plus a directory for advertising memory
    regions (the rkey exchange).

    The exchange itself is control-plane: it happens once at setup, off
    the measured paths. *)

type t

val create : Sim.Engine.t -> t

val listen :
  t ->
  host:Sim.Host.t ->
  service:string ->
  make_cq:(unit -> Cq.t) ->
  ?access:Verbs.access ->
  unit ->
  unit
(** Register [service] on [host]: each incoming dial creates a fresh QP on
    [host] whose completions go to a CQ from [make_cq] and whose initial
    access flags are [access] (default: none). Raises if the (host,
    service) pair is already taken. *)

val dial :
  t ->
  host:Sim.Host.t ->
  peer:string ->
  service:string ->
  cq:Cq.t ->
  ?access:Verbs.access ->
  unit ->
  Qp.t
(** Connect from [host] to the [service] listener on the host named
    [peer]; returns the local endpoint of a connected RC pair. Raises
    [Not_found] if nobody listens there. *)

val accepted : t -> host:Sim.Host.t -> service:string -> (string * Qp.t) list
(** Endpoints created by incoming dials on a listener, newest first, as
    [(dialer host name, local QP)]. *)

val advertise : t -> host:Sim.Host.t -> name:string -> Mr.t -> unit
(** Publish a memory region under [name] — the rkey handout. *)

val lookup : t -> peer:string -> name:string -> Mr.t
(** Fetch a peer's advertised region handle. Raises [Not_found]. *)
