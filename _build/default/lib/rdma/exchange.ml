type listener = {
  l_host : Sim.Host.t;
  make_cq : unit -> Cq.t;
  l_access : Verbs.access;
  mutable accepted : (string * Qp.t) list;
}

type t = {
  engine : Sim.Engine.t;
  listeners : (string * string, listener) Hashtbl.t;  (* (host, service) *)
  regions : (string * string, Mr.t) Hashtbl.t;  (* (host, name) *)
}

let create engine = { engine; listeners = Hashtbl.create 16; regions = Hashtbl.create 16 }

let listen t ~host ~service ~make_cq ?(access = Verbs.access_none) () =
  let key = (Sim.Host.name host, service) in
  if Hashtbl.mem t.listeners key then
    invalid_arg
      (Printf.sprintf "Exchange.listen: %s/%s already registered" (Sim.Host.name host)
         service);
  Hashtbl.replace t.listeners key
    { l_host = host; make_cq; l_access = access; accepted = [] }

let dial t ~host ~peer ~service ~cq ?(access = Verbs.access_none) () =
  let l = Hashtbl.find t.listeners (peer, service) in
  let local = Qp.create host ~cq in
  let remote = Qp.create l.l_host ~cq:(l.make_cq ()) in
  Qp.connect local remote;
  Qp.set_access local access;
  Qp.set_access remote l.l_access;
  l.accepted <- (Sim.Host.name host, remote) :: l.accepted;
  local

let accepted t ~host ~service =
  match Hashtbl.find_opt t.listeners (Sim.Host.name host, service) with
  | Some l -> l.accepted
  | None -> []

let advertise t ~host ~name mr = Hashtbl.replace t.regions (Sim.Host.name host, name) mr
let lookup t ~peer ~name = Hashtbl.find t.regions (peer, name)
