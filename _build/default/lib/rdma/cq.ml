type t = Verbs.wc Sim.Engine.Chan.chan

let create engine = Sim.Engine.Chan.create engine
let push t wc = Sim.Engine.Chan.send t wc
let await t = Sim.Engine.Chan.recv t
let await_timeout t ns = Sim.Engine.Chan.recv_timeout t ns
let poll t = Sim.Engine.Chan.poll t
let pending t = Sim.Engine.Chan.length t
