lib/rdma/verbs.mli: Fmt
