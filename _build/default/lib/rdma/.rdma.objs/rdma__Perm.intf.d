lib/rdma/perm.mli: Mr Qp Verbs
