lib/rdma/qp.mli: Bytes Cq Mr Sim Verbs
