lib/rdma/exchange.mli: Cq Mr Qp Sim Verbs
