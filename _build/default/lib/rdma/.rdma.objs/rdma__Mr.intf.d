lib/rdma/mr.mli: Bytes Sim Verbs
