lib/rdma/mr.ml: Bytes Sim Verbs
