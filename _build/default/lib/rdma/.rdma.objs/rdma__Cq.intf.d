lib/rdma/cq.mli: Sim Verbs
