lib/rdma/quorum.ml: Cq Hashtbl List Verbs
