lib/rdma/cq.ml: Sim Verbs
