lib/rdma/qp.ml: Bytes Cq Mr Queue Sim Verbs
