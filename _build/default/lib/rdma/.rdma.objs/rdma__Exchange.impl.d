lib/rdma/exchange.ml: Cq Hashtbl Mr Printf Qp Sim Verbs
