lib/rdma/perm.ml: Mr Qp Sim Verbs
