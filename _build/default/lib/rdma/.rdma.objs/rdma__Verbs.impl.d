lib/rdma/verbs.ml: Fmt
