lib/rdma/quorum.mli: Cq Verbs
