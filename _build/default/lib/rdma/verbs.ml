type access = { remote_read : bool; remote_write : bool }

let access_none = { remote_read = false; remote_write = false }
let access_ro = { remote_read = true; remote_write = false }
let access_rw = { remote_read = true; remote_write = true }

let pp_access ppf a =
  Fmt.pf ppf "%c%c" (if a.remote_read then 'r' else '-') (if a.remote_write then 'w' else '-')

type qp_state = Reset | Init | Rtr | Rts | Err

let pp_qp_state ppf s =
  Fmt.string ppf
    (match s with Reset -> "RESET" | Init -> "INIT" | Rtr -> "RTR" | Rts -> "RTS" | Err -> "ERR")

type wc_status = Success | Remote_access_error | Operation_timeout | Flushed

let pp_wc_status ppf s =
  Fmt.string ppf
    (match s with
    | Success -> "success"
    | Remote_access_error -> "remote-access-error"
    | Operation_timeout -> "timeout"
    | Flushed -> "flushed")

type wc = {
  wr_id : int;
  kind : [ `Write | `Read | `Send | `Recv ];
  status : wc_status;
  byte_len : int;
}

let pp_wc ppf wc =
  Fmt.pf ppf "wc{id=%d;%s;%a;%dB}" wc.wr_id
    (match wc.kind with
    | `Write -> "write"
    | `Read -> "read"
    | `Send -> "send"
    | `Recv -> "recv")
    pp_wc_status wc.status wc.byte_len
