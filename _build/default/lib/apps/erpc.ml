let message_capacity = 512
let server_cpu = 350 (* request dispatch at the server *)

(* Client-stack overhead per call: the heavy-tailed component of eRPC's
   end-to-end latency (congestion control, pacing, event loop), calibrated
   so unreplicated Liquibook lands at the paper's 4.08 us median with its
   wide 1p..99p band. *)
let client_overhead =
  Sim.Distribution.Shifted
    { base = 350.0; jitter = Lognormal { median = 800.0; sigma = 0.95 } }

type server = {
  engine : Sim.Engine.t;
  cal : Sim.Calibration.t;
  host : Sim.Host.t;
  handler : bytes -> bytes;
  mutable wr : int;
}

type client = {
  c_server : server;
  c_host : Sim.Host.t;
  c_qp : Rdma.Qp.t;
  c_cq : Rdma.Cq.t;
  c_rng : Sim.Rng.t;
  mutable c_wr : int;
  resp_buf : Bytes.t;
}

let server engine cal ~host ~handler = { engine; cal; host; handler; wr = 0 }

(* Each client connection gets its own QP pair and a server-side fiber
   that keeps one receive posted and answers requests in order. *)
let connect srv ~host =
  let c_cq = Rdma.Cq.create srv.engine in
  let s_cq = Rdma.Cq.create srv.engine in
  let c_qp = Rdma.Qp.create host ~cq:c_cq in
  let s_qp = Rdma.Qp.create srv.host ~cq:s_cq in
  Rdma.Qp.connect c_qp s_qp;
  let req_buf = Bytes.create message_capacity in
  Sim.Host.spawn srv.host ~name:"erpc-server" (fun () ->
      let rec serve () =
        srv.wr <- srv.wr + 1;
        Rdma.Qp.post_recv s_qp ~wr_id:srv.wr ~dst:req_buf ~dst_off:0
          ~max_len:message_capacity;
        let rec await_request () =
          let wc = Rdma.Cq.await s_cq in
          match wc.Rdma.Verbs.kind, wc.Rdma.Verbs.status with
          | `Recv, Rdma.Verbs.Success -> wc.Rdma.Verbs.byte_len
          | `Send, Rdma.Verbs.Success -> await_request ()
          | _, _ -> raise Exit
        in
        match await_request () with
        | len ->
          Sim.Host.cpu srv.host server_cpu;
          let response = srv.handler (Bytes.sub req_buf 0 len) in
          srv.wr <- srv.wr + 1;
          Rdma.Qp.post_send s_qp ~wr_id:srv.wr ~src:response ~src_off:0
            ~len:(Bytes.length response);
          serve ()
        | exception Exit -> ()
      in
      serve ());
  {
    c_server = srv;
    c_host = host;
    c_qp;
    c_cq;
    c_rng = Sim.Rng.split (Sim.Engine.rng srv.engine);
    c_wr = 0;
    resp_buf = Bytes.create message_capacity;
  }

let call t payload =
  if Bytes.length payload > message_capacity then invalid_arg "Erpc.call: payload too large";
  (* Client-stack cost, split around the wire round trip. *)
  let overhead = Sim.Distribution.sample_ns client_overhead t.c_rng in
  Sim.Host.cpu t.c_host (overhead / 2);
  t.c_wr <- t.c_wr + 1;
  Rdma.Qp.post_recv t.c_qp ~wr_id:t.c_wr ~dst:t.resp_buf ~dst_off:0
    ~max_len:message_capacity;
  t.c_wr <- t.c_wr + 1;
  Rdma.Qp.post_send t.c_qp ~wr_id:t.c_wr ~src:payload ~src_off:0
    ~len:(Bytes.length payload);
  let rec await_response () =
    let wc = Rdma.Cq.await t.c_cq in
    match wc.Rdma.Verbs.kind, wc.Rdma.Verbs.status with
    | `Recv, Rdma.Verbs.Success -> wc.Rdma.Verbs.byte_len
    | `Send, Rdma.Verbs.Success -> await_response ()
    | _, st -> failwith (Fmt.str "Erpc.call: %a" Rdma.Verbs.pp_wc_status st)
  in
  let len = await_response () in
  Sim.Host.cpu t.c_host (overhead - (overhead / 2));
  Bytes.sub t.resp_buf 0 len
