type side = Buy | Sell

let pp_side ppf s = Fmt.string ppf (match s with Buy -> "buy" | Sell -> "sell")

type event =
  | Accepted of { id : int }
  | Filled of { taker : int; maker : int; price : int; qty : int }
  | Done of { id : int }
  | Cancelled of { id : int; remaining : int }
  | Replaced of { id : int }
  | Rejected of { id : int; reason : string }

let pp_event ppf = function
  | Accepted { id } -> Fmt.pf ppf "accepted(%d)" id
  | Filled { taker; maker; price; qty } ->
    Fmt.pf ppf "filled(taker=%d,maker=%d,%d@@%d)" taker maker qty price
  | Done { id } -> Fmt.pf ppf "done(%d)" id
  | Cancelled { id; remaining } -> Fmt.pf ppf "cancelled(%d,rem=%d)" id remaining
  | Replaced { id } -> Fmt.pf ppf "replaced(%d)" id
  | Rejected { id; reason } -> Fmt.pf ppf "rejected(%d,%s)" id reason

type order = {
  id : int;
  side : side;
  mutable price : int;
  mutable qty : int;
  mutable live : bool;  (* false once filled/cancelled; lazily purged *)
}

module Prices = Map.Make (Int)

(* A price level is a FIFO of orders; dead orders are skipped and purged
   when encountered, so cancel is O(1). *)
type level = { mutable fifo : order Queue.t; mutable total : int }

type t = {
  mutable bids : level Prices.t;
  mutable asks : level Prices.t;
  orders : (int, order) Hashtbl.t;
  mutable trades : int;
  mutable volume : int;
}

let create () =
  { bids = Prices.empty; asks = Prices.empty; orders = Hashtbl.create 256; trades = 0; volume = 0 }

let book_side t side = match side with Buy -> t.bids | Sell -> t.asks

let set_side t side m = match side with Buy -> t.bids <- m | Sell -> t.asks <- m

let best t side =
  let m = book_side t side in
  match side with Buy -> Prices.max_binding_opt m | Sell -> Prices.min_binding_opt m

(* Drop dead orders from the head of a level; remove the level if empty. *)
let rec settle_level t side price (lvl : level) =
  match Queue.peek_opt lvl.fifo with
  | Some o when not o.live ->
    ignore (Queue.pop lvl.fifo);
    settle_level t side price lvl
  | Some _ -> ()
  | None -> set_side t side (Prices.remove price (book_side t side))

let rest t (o : order) =
  let m = book_side t o.side in
  let lvl =
    match Prices.find_opt o.price m with
    | Some lvl -> lvl
    | None ->
      let lvl = { fifo = Queue.create (); total = 0 } in
      set_side t o.side (Prices.add o.price lvl m);
      lvl
  in
  Queue.push o lvl.fifo;
  lvl.total <- lvl.total + o.qty;
  Hashtbl.replace t.orders o.id o

let crosses ~taker_side ~limit ~maker_price =
  match taker_side, limit with
  | _, None -> true (* market order *)
  | Buy, Some l -> maker_price <= l
  | Sell, Some l -> maker_price >= l

(* Match [taker] against the opposite side while prices cross; returns the
   events generated, in order. *)
let match_incoming t ~taker_id ~taker_side ~limit ~qty =
  let events = ref [] in
  let emit e = events := e :: !events in
  let maker_side = match taker_side with Buy -> Sell | Sell -> Buy in
  let remaining = ref qty in
  let continue_ = ref true in
  while !continue_ && !remaining > 0 do
    match best t maker_side with
    | None -> continue_ := false
    | Some (price, lvl) ->
      settle_level t maker_side price lvl;
      (match Queue.peek_opt lvl.fifo with
      | None -> () (* level vanished; loop finds the next one *)
      | Some maker ->
        if not (crosses ~taker_side ~limit ~maker_price:price) then continue_ := false
        else begin
          let traded = min !remaining maker.qty in
          maker.qty <- maker.qty - traded;
          lvl.total <- lvl.total - traded;
          remaining := !remaining - traded;
          t.trades <- t.trades + 1;
          t.volume <- t.volume + traded;
          emit (Filled { taker = taker_id; maker = maker.id; price; qty = traded });
          if maker.qty = 0 then begin
            maker.live <- false;
            Hashtbl.remove t.orders maker.id;
            ignore (Queue.pop lvl.fifo);
            settle_level t maker_side price lvl;
            emit (Done { id = maker.id })
          end
        end);
      if Prices.is_empty (book_side t maker_side) then continue_ := false
  done;
  (!remaining, List.rev !events)

let submit_limit t ~id ~side ~price ~qty =
  if Hashtbl.mem t.orders id then [ Rejected { id; reason = "duplicate id" } ]
  else if price <= 0 || qty <= 0 then [ Rejected { id; reason = "bad price/qty" } ]
  else begin
    let remaining, events = match_incoming t ~taker_id:id ~taker_side:side ~limit:(Some price) ~qty in
    if remaining > 0 then begin
      rest t { id; side; price; qty = remaining; live = true };
      events @ [ Accepted { id } ]
    end
    else events @ [ Done { id } ]
  end

let submit_market t ~id ~side ~qty =
  if Hashtbl.mem t.orders id then [ Rejected { id; reason = "duplicate id" } ]
  else if qty <= 0 then [ Rejected { id; reason = "bad qty" } ]
  else begin
    let remaining, events = match_incoming t ~taker_id:id ~taker_side:side ~limit:None ~qty in
    if remaining = qty then events @ [ Rejected { id; reason = "no liquidity" } ]
    else if remaining > 0 then events @ [ Cancelled { id; remaining } ]
    else events @ [ Done { id } ]
  end

let cancel t ~id =
  match Hashtbl.find_opt t.orders id with
  | None -> [ Rejected { id; reason = "unknown order" } ]
  | Some o ->
    o.live <- false;
    Hashtbl.remove t.orders id;
    let m = book_side t o.side in
    (match Prices.find_opt o.price m with
    | Some lvl ->
      lvl.total <- lvl.total - o.qty;
      settle_level t o.side o.price lvl
    | None -> ());
    [ Cancelled { id; remaining = o.qty } ]

let replace t ~id ~price ~qty =
  match Hashtbl.find_opt t.orders id with
  | None -> [ Rejected { id; reason = "unknown order" } ]
  | Some o ->
    let new_price = Option.value price ~default:o.price in
    if qty <= 0 || new_price <= 0 then [ Rejected { id; reason = "bad price/qty" } ]
    else if new_price = o.price && qty <= o.qty then begin
      (* Pure size decrease keeps time priority. *)
      (match Prices.find_opt o.price (book_side t o.side) with
      | Some lvl -> lvl.total <- lvl.total - (o.qty - qty)
      | None -> ());
      o.qty <- qty;
      [ Replaced { id } ]
    end
    else begin
      (* Price change or size increase: cancel and re-enter, losing time
         priority (and possibly matching immediately). *)
      let _ = cancel t ~id in
      let events = submit_limit t ~id ~side:o.side ~price:new_price ~qty in
      Replaced { id }
      :: List.filter (function Accepted _ -> false | _ -> true) events
    end

let level_stats (price, (lvl : level)) = (price, lvl.total)

let best_bid t = Option.map level_stats (Prices.max_binding_opt t.bids)
let best_ask t = Option.map level_stats (Prices.min_binding_opt t.asks)

let depth t side ~levels =
  let m = book_side t side in
  let bindings = Prices.bindings m in
  let ordered = match side with Buy -> List.rev bindings | Sell -> bindings in
  List.filteri (fun i _ -> i < levels) ordered |> List.map level_stats

let open_order_count t = Hashtbl.length t.orders

let open_qty t side =
  Hashtbl.fold (fun _ o acc -> if o.side = side then acc + o.qty else acc) t.orders 0

let trades_executed t = t.trades
let volume_traded t = t.volume

(* Snapshot: the set of live resting orders plus counters. Replay of the
   restore rebuilds identical book structure because insertion order within
   a level is captured. *)
let snapshot t =
  let buf = Buffer.create 256 in
  let add_i32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  add_i32 t.trades;
  add_i32 t.volume;
  let dump side =
    let m = book_side t side in
    Prices.iter
      (fun price lvl ->
        Queue.iter
          (fun o ->
            if o.live then begin
              add_i32 o.id;
              add_i32 (match o.side with Buy -> 0 | Sell -> 1);
              add_i32 price;
              add_i32 o.qty
            end)
          lvl.fifo)
      m
  in
  dump Buy;
  dump Sell;
  Buffer.to_bytes buf

let restore data =
  let t = create () in
  let get_i32 off = Int32.to_int (Bytes.get_int32_le data off) in
  t.trades <- get_i32 0;
  t.volume <- get_i32 4;
  let off = ref 8 in
  while !off + 16 <= Bytes.length data do
    let id = get_i32 !off in
    let side = if get_i32 (!off + 4) = 0 then Buy else Sell in
    let price = get_i32 (!off + 8) in
    let qty = get_i32 (!off + 12) in
    rest t { id; side; price; qty; live = true };
    off := !off + 16
  done;
  t
