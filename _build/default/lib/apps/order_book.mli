(** A price-time-priority limit order book — our implementation of the
    order matching engine the paper replicates (Liquibook, §7).

    At the heart of a financial exchange is the matching engine: parties
    submit buy and sell orders; the engine crosses them. This module
    implements the standard continuous double auction:

    - {b Price priority}: a buy matches the lowest-priced ask first, a
      sell the highest-priced bid.
    - {b Time priority}: within a price level, orders fill
      first-in-first-out.
    - {b Partial fills}: an order may trade against several resting
      orders; an unfilled remainder of a limit order rests on the book.
    - {b Market orders} fill at the best available prices; any remainder
      is cancelled (immediate-or-cancel).
    - {b Cancel / replace}: resting orders can be cancelled or have price
      or quantity amended; a price change or quantity increase loses time
      priority, a pure decrease keeps it.

    Prices are integer ticks, quantities integer lots. The engine is
    deterministic — a requirement for state machine replication (§2.2). *)

type side = Buy | Sell

val pp_side : side Fmt.t

type event =
  | Accepted of { id : int }
      (** Order entered the book (possibly after partial fills). *)
  | Filled of { taker : int; maker : int; price : int; qty : int }
      (** A trade: the incoming [taker] crossed resting order [maker]. *)
  | Done of { id : int }  (** Order fully filled and removed. *)
  | Cancelled of { id : int; remaining : int }
  | Replaced of { id : int }
  | Rejected of { id : int; reason : string }

val pp_event : event Fmt.t

type t

val create : unit -> t

val submit_limit : t -> id:int -> side:side -> price:int -> qty:int -> event list
(** Match what crosses; rest the remainder. Rejects duplicate ids and
    non-positive price or quantity. *)

val submit_market : t -> id:int -> side:side -> qty:int -> event list
(** Match against the book; never rests (IOC). *)

val cancel : t -> id:int -> event list
val replace : t -> id:int -> price:int option -> qty:int -> event list
(** [price = None] keeps the current price. *)

(** {1 Inspection} *)

val best_bid : t -> (int * int) option
(** Best bid (price, total resting quantity). *)

val best_ask : t -> (int * int) option

val depth : t -> side -> levels:int -> (int * int) list
(** Top price levels, best first. *)

val open_order_count : t -> int
val open_qty : t -> side -> int
(** Total resting quantity on one side (for conservation checks). *)

val trades_executed : t -> int
val volume_traded : t -> int

(** {1 Serialization} — for SMR checkpoints (§5.4). *)

val snapshot : t -> Bytes.t
val restore : Bytes.t -> t
