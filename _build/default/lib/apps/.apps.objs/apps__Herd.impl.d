lib/apps/herd.ml: Array Bytes Hashtbl Int32 Int64 Rdma Sim
