lib/apps/lock_service.ml: Buffer Bytes Hashtbl Int32 Mu Option Queue String
