lib/apps/kv_store.ml: Buffer Bytes Hashtbl Int32 Mu Option String
