lib/apps/herd.mli: Sim
