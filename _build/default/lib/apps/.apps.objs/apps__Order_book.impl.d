lib/apps/order_book.ml: Buffer Bytes Fmt Hashtbl Int Int32 List Map Option Queue
