lib/apps/lock_service.mli: Bytes Mu
