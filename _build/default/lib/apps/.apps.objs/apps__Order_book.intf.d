lib/apps/order_book.mli: Bytes Fmt
