lib/apps/transport.mli: Fmt Sim
