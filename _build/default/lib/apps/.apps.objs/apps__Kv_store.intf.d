lib/apps/kv_store.mli: Bytes Mu
