lib/apps/exchange.ml: Buffer Bytes Int32 List Mu Order_book
