lib/apps/exchange.mli: Bytes Mu Order_book
