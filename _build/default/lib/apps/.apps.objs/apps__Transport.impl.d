lib/apps/transport.ml: Fmt Sim
