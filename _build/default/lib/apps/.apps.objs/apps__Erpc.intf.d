lib/apps/erpc.mli: Sim
