lib/apps/erpc.ml: Bytes Fmt Rdma Sim
