(** An executable HERD-style RDMA key-value server (Kalia et al.,
    SIGCOMM'14) — the paper's exemplar microsecond application (§7).

    HERD's request path: clients RDMA-Write their request into a
    dedicated slot of the server's request region; the server CPU polls
    the slots, executes the operation, and pushes the response back into
    the client's response region. Both directions are one-sided, so a
    GET costs one write + server poll/execute + one write — a couple of
    microseconds client-to-client.

    This module runs that protocol for real on the simulated fabric (the
    `Transport.Herd_rdma` distribution is the calibrated shortcut used by
    the fig. 5 harness; this is the long way round, and the two agree).
    The [handler] makes the server generic: plain KV for an unreplicated
    HERD, or capture-replicate-execute for HERD-over-Mu as in Fig. 1. *)

type server

val server :
  Sim.Engine.t ->
  Sim.Calibration.t ->
  host:Sim.Host.t ->
  clients:int ->
  handler:(bytes -> bytes) ->
  server
(** Start a server on [host] with [clients] request slots. [handler] runs
    on the server host's fiber (its execution time must be modelled by the
    caller via {!Sim.Host.cpu} if nonzero). *)

val request_capacity : int
(** Maximum request/response payload (bytes). *)

type client

val connect : server -> id:int -> host:Sim.Host.t -> client
(** Attach client [id] (0-based, < [clients]) from its own host. *)

val call : client -> bytes -> bytes
(** One RPC: write the request, await the response (fiber context). *)
