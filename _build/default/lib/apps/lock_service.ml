type lock_state = { mutable owner : (int * int) option; waiters : int Queue.t }

type t = {
  locks : (string, lock_state) Hashtbl.t;
  mutable next_fence : int;
  last_applied : (int, int * Bytes.t) Hashtbl.t;
}

let create () = { locks = Hashtbl.create 64; next_fence = 1; last_applied = Hashtbl.create 64 }

type command =
  | Acquire of { client : int; lock : string }
  | Release of { client : int; lock : string }
  | Holder of { lock : string }

type reply =
  | Granted of { fence : int }
  | Queued of { position : int }
  | Released
  | Not_held
  | Held_by of { client : int; fence : int }
  | Free

let state_of t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
    let s = { owner = None; waiters = Queue.create () } in
    Hashtbl.replace t.locks lock s;
    s

let grant t s client =
  let fence = t.next_fence in
  t.next_fence <- t.next_fence + 1;
  s.owner <- Some (client, fence);
  fence

let apply t cmd =
  match cmd with
  | Acquire { client; lock } -> (
    let s = state_of t lock in
    match s.owner with
    | None -> Granted { fence = grant t s client }
    | Some (owner, fence) when owner = client -> Granted { fence }
    | Some _ ->
      if Queue.fold (fun acc w -> acc || w = client) false s.waiters then
        Queued
          {
            position =
              (let pos = ref 0 and i = ref 0 in
               Queue.iter
                 (fun w ->
                   incr i;
                   if w = client then pos := !i)
                 s.waiters;
               !pos);
          }
      else begin
        Queue.push client s.waiters;
        Queued { position = Queue.length s.waiters }
      end)
  | Release { client; lock } -> (
    let s = state_of t lock in
    match s.owner with
    | Some (owner, _) when owner = client ->
      (match Queue.take_opt s.waiters with
      | Some next -> ignore (grant t s next)
      | None -> s.owner <- None);
      Released
    | Some _ | None -> Not_held)
  | Holder { lock } -> (
    match Hashtbl.find_opt t.locks lock with
    | Some { owner = Some (client, fence); _ } -> Held_by { client; fence }
    | Some { owner = None; _ } | None -> Free)

let holder t lock =
  match Hashtbl.find_opt t.locks lock with Some s -> s.owner | None -> None

let queue_length t lock =
  match Hashtbl.find_opt t.locks lock with Some s -> Queue.length s.waiters | None -> 0

let locks_held t =
  Hashtbl.fold (fun _ s acc -> if s.owner <> None then acc + 1 else acc) t.locks 0

(* --- codec ---------------------------------------------------------------- *)

let put_string buf s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  Buffer.add_bytes buf b;
  Buffer.add_string buf s

let get_string data off =
  let len = Int32.to_int (Bytes.get_int32_le data off) in
  (Bytes.sub_string data (off + 4) len, off + 4 + len)

let encode_command ?(client = 0) ?(req_id = 0) cmd =
  let buf = Buffer.create 32 in
  let hdr = Bytes.create 13 in
  Bytes.set hdr 0
    (match cmd with Acquire _ -> 'A' | Release _ -> 'R' | Holder _ -> 'H');
  Bytes.set_int32_le hdr 1 (Int32.of_int client);
  Bytes.set_int32_le hdr 5 (Int32.of_int req_id);
  (match cmd with
  | Acquire { client = c; _ } | Release { client = c; _ } ->
    Bytes.set_int32_le hdr 9 (Int32.of_int c)
  | Holder _ -> ());
  Buffer.add_bytes buf hdr;
  (match cmd with
  | Acquire { lock; _ } | Release { lock; _ } | Holder { lock } -> put_string buf lock);
  Buffer.to_bytes buf

let decode_command data =
  if Bytes.length data < 13 then None
  else
    try
      let client = Int32.to_int (Bytes.get_int32_le data 1) in
      let req_id = Int32.to_int (Bytes.get_int32_le data 5) in
      let actor = Int32.to_int (Bytes.get_int32_le data 9) in
      let lock, _ = get_string data 13 in
      match Bytes.get data 0 with
      | 'A' -> Some (client, req_id, Acquire { client = actor; lock })
      | 'R' -> Some (client, req_id, Release { client = actor; lock })
      | 'H' -> Some (client, req_id, Holder { lock })
      | _ -> None
    with Invalid_argument _ -> None

let encode_reply r =
  let b = Bytes.make 9 '\000' in
  (match r with
  | Granted { fence } ->
    Bytes.set b 0 'G';
    Bytes.set_int32_le b 1 (Int32.of_int fence)
  | Queued { position } ->
    Bytes.set b 0 'Q';
    Bytes.set_int32_le b 1 (Int32.of_int position)
  | Released -> Bytes.set b 0 'R'
  | Not_held -> Bytes.set b 0 'N'
  | Held_by { client; fence } ->
    Bytes.set b 0 'B';
    Bytes.set_int32_le b 1 (Int32.of_int client);
    Bytes.set_int32_le b 5 (Int32.of_int fence)
  | Free -> Bytes.set b 0 'F');
  b

let decode_reply b =
  if Bytes.length b < 9 then None
  else
    let i32 off = Int32.to_int (Bytes.get_int32_le b off) in
    match Bytes.get b 0 with
    | 'G' -> Some (Granted { fence = i32 1 })
    | 'Q' -> Some (Queued { position = i32 1 })
    | 'R' -> Some Released
    | 'N' -> Some Not_held
    | 'B' -> Some (Held_by { client = i32 1; fence = i32 5 })
    | 'F' -> Some Free
    | _ -> None

(* --- dedup + checkpoint ----------------------------------------------------- *)

let apply_dedup t ~client ~req_id cmd =
  match Hashtbl.find_opt t.last_applied client with
  | Some (last, reply) when last = req_id && req_id <> 0 ->
    Option.value (decode_reply reply) ~default:Not_held
  | Some _ | None ->
    let reply = apply t cmd in
    if req_id <> 0 then Hashtbl.replace t.last_applied client (req_id, encode_reply reply);
    reply

let snapshot t =
  let buf = Buffer.create 256 in
  let add_i32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  add_i32 t.next_fence;
  add_i32 (Hashtbl.length t.locks);
  Hashtbl.iter
    (fun name s ->
      put_string buf name;
      (match s.owner with
      | Some (c, f) ->
        add_i32 1;
        add_i32 c;
        add_i32 f
      | None -> add_i32 0);
      add_i32 (Queue.length s.waiters);
      Queue.iter add_i32 s.waiters)
    t.locks;
  Buffer.to_bytes buf

let restore data =
  let t = create () in
  let i32 off = Int32.to_int (Bytes.get_int32_le data off) in
  t.next_fence <- i32 0;
  let count = i32 4 in
  let off = ref 8 in
  for _ = 1 to count do
    let name, o = get_string data !off in
    let s = state_of t name in
    let o =
      if i32 o = 1 then begin
        s.owner <- Some (i32 (o + 4), i32 (o + 8));
        o + 12
      end
      else o + 4
    in
    let waiters = i32 o in
    off := o + 4;
    for _ = 1 to waiters do
      Queue.push (i32 !off) s.waiters;
      off := !off + 4
    done
  done;
  t

let smr_app () =
  let service = ref (create ()) in
  {
    Mu.Smr.apply =
      (fun payload ->
        match decode_command payload with
        | Some (client, req_id, cmd) ->
          encode_reply (apply_dedup !service ~client ~req_id cmd)
        | None -> Bytes.empty);
    snapshot = (fun () -> snapshot !service);
    install = (fun data -> service := restore data);
  }
