(** An eRPC-style RPC layer (Kalia et al., NSDI'19) over two-sided
    Send/Receive — the transport the paper used to build the client-server
    Liquibook it then replicated with Mu (§7: "We created an unreplicated
    client-server version of Liquibook using eRPC, and then replicated
    this system using Mu").

    A server endpoint keeps receive buffers posted and answers each
    request with a Send; clients do the same in the other direction. On
    top of the raw fabric cost, each call charges a calibrated client-side
    overhead with a heavy tail — the RPC-layer and client-stack variance
    to which the paper attributes Liquibook's wide latency distribution
    even unreplicated (§7.2: "This variance comes from the client-server
    communication of Liquibook, which is based on eRPC"). *)

type server

val server :
  Sim.Engine.t ->
  Sim.Calibration.t ->
  host:Sim.Host.t ->
  handler:(bytes -> bytes) ->
  server
(** Start an RPC server; [handler] executes on the server host. *)

val message_capacity : int

type client

val connect : server -> host:Sim.Host.t -> client

val call : client -> bytes -> bytes
(** One RPC (fiber context). *)
