type kind = Tcp_memcached | Tcp_redis | Erpc | Herd_rdma

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Tcp_memcached -> "memcached/tcp"
    | Tcp_redis -> "redis/tcp"
    | Erpc -> "liquibook/erpc"
    | Herd_rdma -> "herd/rdma")

let payload_size = function
  | Erpc -> 32
  | Herd_rdma -> 50
  | Tcp_memcached | Tcp_redis -> 64

type t = { kind : kind; dist : Sim.Distribution.t; rng : Sim.Rng.t }

let create kind cal rng =
  let dist =
    match kind with
    | Tcp_memcached -> cal.Sim.Calibration.tcp_rtt_memcached
    | Tcp_redis -> cal.Sim.Calibration.tcp_rtt_redis
    | Erpc -> cal.Sim.Calibration.erpc_rtt
    | Herd_rdma -> cal.Sim.Calibration.herd_rtt
  in
  { kind; dist; rng }

let rtt_sample t = Sim.Distribution.sample_ns t.dist t.rng
let request_leg _t rtt = rtt / 2
let response_leg _t rtt = rtt - (rtt / 2)

let app_compute kind cal =
  match kind with
  | Erpc -> cal.Sim.Calibration.order_match
  | Tcp_memcached | Tcp_redis | Herd_rdma -> cal.Sim.Calibration.kv_op
