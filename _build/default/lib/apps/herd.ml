let request_capacity = 256

(* Slot layout (requests at the server; responses at each client):
   seq(8) len(4) payload(cap). The sequence number changes with every
   message, so the polling side detects arrival without zeroing. *)
let slot_size = 12 + request_capacity
let poll_phase = 650 (* server notices a request within this window *)
let serve_cpu = 600 (* slot bookkeeping + client-side response detection *)

type server = {
  engine : Sim.Engine.t;
  cal : Sim.Calibration.t;
  host : Sim.Host.t;
  req_mr : Rdma.Mr.t;
  clients : int;
  handler : bytes -> bytes;
  doorbell : int Sim.Engine.Chan.chan;  (* client slots with fresh requests *)
  resp_targets : (int, Rdma.Qp.t * Rdma.Mr.t) Hashtbl.t;
  mutable wr : int;
  cq : Rdma.Cq.t;
}

let encode_msg ~seq payload =
  let b = Bytes.make (12 + Bytes.length payload) '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.set_int32_le b 8 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 b 12 (Bytes.length payload);
  b

let decode_msg buf off =
  let seq = Int64.to_int (Rdma.Mr.get_i64 buf ~off) in
  let len = Int32.to_int (Bytes.get_int32_le (Rdma.Mr.buffer buf) (off + 8)) in
  (seq, Rdma.Mr.get_bytes buf ~off:(off + 12) ~len)

let server engine cal ~host ~clients ~handler =
  let req_mr =
    Rdma.Mr.register host ~size:(clients * slot_size) ~access:Rdma.Verbs.access_rw
  in
  let t =
    {
      engine;
      cal;
      host;
      req_mr;
      clients;
      handler;
      doorbell = Sim.Engine.Chan.create engine;
      resp_targets = Hashtbl.create 8;
      wr = 0;
      cq = Rdma.Cq.create engine;
    }
  in
  (* The hook stands in for the server's slot-polling loop: the poll phase
     is charged explicitly when the request is picked up. *)
  Rdma.Mr.set_write_hook req_mr
    (Some (fun ~off ~len:_ -> Sim.Engine.Chan.send t.doorbell (off / slot_size)));
  Sim.Host.spawn host ~name:"herd-server" (fun () ->
      let last_seq = Array.make clients 0 in
      let rng = Sim.Host.rng host in
      let rec loop () =
        let slot = Sim.Engine.Chan.recv t.doorbell in
        let seq, payload = decode_msg t.req_mr (slot * slot_size) in
        if seq > last_seq.(slot) then begin
          last_seq.(slot) <- seq;
          Sim.Host.cpu host (Sim.Rng.int rng poll_phase + serve_cpu);
          let response = t.handler payload in
          (match Hashtbl.find_opt t.resp_targets slot with
          | Some (qp, mr) ->
            let msg = encode_msg ~seq response in
            t.wr <- t.wr + 1;
            Rdma.Qp.post_write qp ~wr_id:t.wr ~src:msg ~src_off:0 ~len:(Bytes.length msg)
              ~mr ~dst_off:0;
            ignore (Rdma.Cq.await t.cq)
          | None -> ())
        end;
        loop ()
      in
      loop ());
  t

type client = {
  c_server : server;
  c_id : int;
  c_host : Sim.Host.t;
  c_qp : Rdma.Qp.t;  (* client -> server *)
  c_resp_mr : Rdma.Mr.t;
  c_cq : Rdma.Cq.t;
  mutable c_seq : int;
  mutable c_wr : int;
  mutable c_wait : (int * bytes Sim.Engine.Ivar.ivar) option;
}

let connect srv ~id ~host =
  if id < 0 || id >= srv.clients then invalid_arg "Herd.connect: bad client id";
  let c_cq = Rdma.Cq.create srv.engine in
  let c_qp = Rdma.Qp.create host ~cq:c_cq in
  let s_qp = Rdma.Qp.create srv.host ~cq:srv.cq in
  Rdma.Qp.connect c_qp s_qp;
  Rdma.Qp.set_access c_qp Rdma.Verbs.access_rw;
  Rdma.Qp.set_access s_qp Rdma.Verbs.access_rw;
  let c_resp_mr = Rdma.Mr.register host ~size:slot_size ~access:Rdma.Verbs.access_rw in
  let t =
    { c_server = srv; c_id = id; c_host = host; c_qp; c_resp_mr; c_cq; c_seq = 0;
      c_wr = 0; c_wait = None }
  in
  Hashtbl.replace srv.resp_targets id (s_qp, c_resp_mr);
  Rdma.Mr.set_write_hook c_resp_mr
    (Some
       (fun ~off:_ ~len:_ ->
         match t.c_wait with
         | Some (expect, iv) ->
           let seq, payload = decode_msg t.c_resp_mr 0 in
           if seq = expect then begin
             t.c_wait <- None;
             Sim.Engine.Ivar.fill iv payload
           end
         | None -> ()));
  t

let call t payload =
  if Bytes.length payload > request_capacity then invalid_arg "Herd.call: payload too large";
  t.c_seq <- t.c_seq + 1;
  let iv = Sim.Engine.Ivar.create t.c_server.engine in
  t.c_wait <- Some (t.c_seq, iv);
  let msg = encode_msg ~seq:t.c_seq payload in
  t.c_wr <- t.c_wr + 1;
  Rdma.Qp.post_write t.c_qp ~wr_id:t.c_wr ~src:msg ~src_off:0 ~len:(Bytes.length msg)
    ~mr:t.c_server.req_mr ~dst_off:(t.c_id * slot_size);
  ignore (Rdma.Cq.await t.c_cq);
  ignore t.c_host;
  Sim.Engine.Ivar.read iv
