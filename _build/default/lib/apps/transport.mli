(** Client↔server transport models for the end-to-end experiments (§7.2).

    The paper's applications differ mainly in how clients reach the
    service:

    - {b Memcached / Redis}: TCP from a different cluster — client-to-
      client latencies in the hundreds of microseconds (Fig. 5, right).
    - {b Liquibook}: eRPC — a few microseconds with a long tail ("This
      variance comes from the client-server communication of Liquibook,
      which is based on eRPC", §7.2).
    - {b HERD}: RDMA-based key-value store — ~2 µs client-to-client.

    Each model samples a full round-trip from the calibrated distribution
    and splits it into request and response legs; the server-side compute
    and (optional) replication happen between the legs. *)

type kind = Tcp_memcached | Tcp_redis | Erpc | Herd_rdma

val pp_kind : kind Fmt.t

val payload_size : kind -> int
(** The paper's request sizes: 32 B for Liquibook, 50 B for HERD, 64 B
    default for the TCP stores (Fig. 3). *)

type t

val create : kind -> Sim.Calibration.t -> Sim.Rng.t -> t

val rtt_sample : t -> int
(** One full round-trip sample (ns), excluding server time. *)

val request_leg : t -> int -> int
(** Split an {!rtt_sample} into the client→server leg... returns the
    request-leg duration for a given sampled RTT. *)

val response_leg : t -> int -> int

val app_compute : kind -> Sim.Calibration.t -> int
(** Server-side compute per request for the application this transport
    fronts (order matching vs. KV operation). *)
