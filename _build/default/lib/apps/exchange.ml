type command =
  | Limit of { id : int; side : Order_book.side; price : int; qty : int }
  | Market of { id : int; side : Order_book.side; qty : int }
  | Cancel of { id : int }
  | Replace of { id : int; price : int option; qty : int }

let side_byte = function Order_book.Buy -> '\000' | Order_book.Sell -> '\001'
let side_of_byte = function '\000' -> Order_book.Buy | _ -> Order_book.Sell

(* Fixed 21-byte frame: tag, id, side, price, qty — padded to 32 bytes to
   match the paper's Liquibook payload size. *)
let frame_size = 32

let encode_command cmd =
  let b = Bytes.make frame_size '\000' in
  let set_i32 off v = Bytes.set_int32_le b off (Int32.of_int v) in
  (match cmd with
  | Limit { id; side; price; qty } ->
    Bytes.set b 0 'L';
    set_i32 1 id;
    Bytes.set b 5 (side_byte side);
    set_i32 6 price;
    set_i32 10 qty
  | Market { id; side; qty } ->
    Bytes.set b 0 'M';
    set_i32 1 id;
    Bytes.set b 5 (side_byte side);
    set_i32 10 qty
  | Cancel { id } ->
    Bytes.set b 0 'C';
    set_i32 1 id
  | Replace { id; price; qty } ->
    Bytes.set b 0 'R';
    set_i32 1 id;
    (match price with
    | Some p ->
      Bytes.set b 5 '\001';
      set_i32 6 p
    | None -> ());
    set_i32 10 qty);
  b

let decode_command b =
  if Bytes.length b < frame_size then None
  else
    let get_i32 off = Int32.to_int (Bytes.get_int32_le b off) in
    let id = get_i32 1 in
    match Bytes.get b 0 with
    | 'L' ->
      Some
        (Limit { id; side = side_of_byte (Bytes.get b 5); price = get_i32 6; qty = get_i32 10 })
    | 'M' -> Some (Market { id; side = side_of_byte (Bytes.get b 5); qty = get_i32 10 })
    | 'C' -> Some (Cancel { id })
    | 'R' ->
      let price = if Bytes.get b 5 = '\001' then Some (get_i32 6) else None in
      Some (Replace { id; price; qty = get_i32 10 })
    | _ -> None

let command_size cmd = Bytes.length (encode_command cmd)

let encode_events events =
  let buf = Buffer.create 64 in
  let add_i32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  List.iter
    (fun (e : Order_book.event) ->
      match e with
      | Order_book.Accepted { id } ->
        Buffer.add_char buf 'A';
        add_i32 id
      | Order_book.Filled { taker; maker; price; qty } ->
        Buffer.add_char buf 'F';
        add_i32 taker;
        add_i32 maker;
        add_i32 price;
        add_i32 qty
      | Order_book.Done { id } ->
        Buffer.add_char buf 'X';
        add_i32 id
      | Order_book.Cancelled { id; remaining } ->
        Buffer.add_char buf 'C';
        add_i32 id;
        add_i32 remaining
      | Order_book.Replaced { id } ->
        Buffer.add_char buf 'R';
        add_i32 id
      | Order_book.Rejected { id; reason = _ } ->
        Buffer.add_char buf 'J';
        add_i32 id)
    events;
  Buffer.to_bytes buf

let decode_events b =
  let get_i32 off = Int32.to_int (Bytes.get_int32_le b off) in
  let rec go off acc =
    if off >= Bytes.length b then List.rev acc
    else
      match Bytes.get b off with
      | 'A' -> go (off + 5) (Order_book.Accepted { id = get_i32 (off + 1) } :: acc)
      | 'F' ->
        go (off + 17)
          (Order_book.Filled
             {
               taker = get_i32 (off + 1);
               maker = get_i32 (off + 5);
               price = get_i32 (off + 9);
               qty = get_i32 (off + 13);
             }
          :: acc)
      | 'X' -> go (off + 5) (Order_book.Done { id = get_i32 (off + 1) } :: acc)
      | 'C' ->
        go (off + 9)
          (Order_book.Cancelled { id = get_i32 (off + 1); remaining = get_i32 (off + 5) }
          :: acc)
      | 'R' -> go (off + 5) (Order_book.Replaced { id = get_i32 (off + 1) } :: acc)
      | 'J' ->
        go (off + 5) (Order_book.Rejected { id = get_i32 (off + 1); reason = "" } :: acc)
      | _ -> List.rev acc
  in
  go 0 []

let apply book cmd =
  match cmd with
  | Limit { id; side; price; qty } -> Order_book.submit_limit book ~id ~side ~price ~qty
  | Market { id; side; qty } -> Order_book.submit_market book ~id ~side ~qty
  | Cancel { id } -> Order_book.cancel book ~id
  | Replace { id; price; qty } -> Order_book.replace book ~id ~price ~qty

let smr_app () =
  let book = ref (Order_book.create ()) in
  {
    Mu.Smr.apply =
      (fun payload ->
        match decode_command payload with
        | Some cmd -> encode_events (apply !book cmd)
        | None -> Bytes.empty);
    snapshot = (fun () -> Order_book.snapshot !book);
    install = (fun data -> book := Order_book.restore data);
  }
