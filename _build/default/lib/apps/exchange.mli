(** The replicated financial-exchange service: {!Order_book} behind a
    binary command codec and an {!Mu.Smr} application — our equivalent of
    the paper's Liquibook-over-eRPC service (§7).

    Requests are matching-engine commands; responses carry the resulting
    events. Order ids are client-assigned; the book's duplicate-id
    rejection doubles as the idempotence guard under SMR's at-least-once
    delivery (a re-executed submit is rejected as a duplicate and the
    client treats that as success). *)

type command =
  | Limit of { id : int; side : Order_book.side; price : int; qty : int }
  | Market of { id : int; side : Order_book.side; qty : int }
  | Cancel of { id : int }
  | Replace of { id : int; price : int option; qty : int }

val encode_command : command -> Bytes.t
val decode_command : Bytes.t -> command option

val encode_events : Order_book.event list -> Bytes.t
val decode_events : Bytes.t -> Order_book.event list

val command_size : command -> int
(** Encoded size; the paper's Liquibook integration uses 32-byte orders. *)

val apply : Order_book.t -> command -> Order_book.event list

val smr_app : unit -> Mu.Smr.app
(** Replica application with checkpoint/restore. *)
