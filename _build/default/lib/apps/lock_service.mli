(** A replicated lock service — the classic SMR workload (the paper's §8
    cites Chubby as the canonical consensus-backed service).

    Exclusive, named locks with FIFO wait queues:

    - {!Acquire} grants the lock if free, re-confirms if the caller
      already holds it (making retried requests idempotent), or enqueues
      the caller and reports its queue position.
    - {!Release} frees the lock and grants it to the head of the wait
      queue, if any.
    - {!Holder} queries current ownership without mutating state.

    All transitions are deterministic, as SMR requires, and the service
    checkpoints for membership changes (§5.4). Fencing tokens increase on
    every grant so clients can order their lock epochs — the standard
    guard against a delayed ex-holder. *)

type t

val create : unit -> t

type command =
  | Acquire of { client : int; lock : string }
  | Release of { client : int; lock : string }
  | Holder of { lock : string }

type reply =
  | Granted of { fence : int }  (** Caller holds the lock. *)
  | Queued of { position : int }  (** Caller waits behind [position] others. *)
  | Released
  | Not_held  (** Release of a lock the caller does not hold. *)
  | Held_by of { client : int; fence : int }
  | Free

val apply : t -> command -> reply

(** {1 Inspection} *)

val holder : t -> string -> (int * int) option
(** Current (client, fence) of a lock. *)

val queue_length : t -> string -> int
val locks_held : t -> int

(** {1 Wire codec and SMR integration} *)

val encode_command : ?client:int -> ?req_id:int -> command -> Bytes.t
val decode_command : Bytes.t -> (int * int * command) option
val encode_reply : reply -> Bytes.t
val decode_reply : Bytes.t -> reply option

val smr_app : unit -> Mu.Smr.app
(** Replica application with duplicate suppression and checkpointing. *)

val snapshot : t -> Bytes.t
val restore : Bytes.t -> t
