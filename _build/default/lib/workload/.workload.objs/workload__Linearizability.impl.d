lib/workload/linearizability.ml: Array Hashtbl List Option
