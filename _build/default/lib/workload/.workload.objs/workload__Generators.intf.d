lib/workload/generators.mli: Apps Bytes Sim
