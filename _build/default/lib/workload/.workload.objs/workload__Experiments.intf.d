lib/workload/experiments.mli: Apps Mu Sim
