lib/workload/generators.ml: Apps Array Bytes Char Hashtbl List Printf Sim
