lib/workload/experiments.ml: Apps Array Baselines Bytes Generators Int64 List Mu Option Printf Rdma Sim
