lib/workload/linearizability.mli:
