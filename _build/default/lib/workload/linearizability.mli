(** A linearizability checker for key-value histories.

    Mu claims linearizability (§1, §2.2); this module lets tests verify
    the claim empirically: record each client operation's invocation and
    response times plus its observed result, and {!check} searches for a
    legal linearization — a total order of the operations that (a)
    respects real-time precedence (an operation that responded before
    another was invoked must come first) and (b) is a valid sequential
    KV execution producing exactly the observed results.

    The search is the standard Wing & Gong backtracking restricted to
    register semantics per key; histories are checked per key
    independently (KV operations on distinct keys commute). Intended for
    test-sized histories (hundreds of operations). *)

type op_kind =
  | Read of string option  (** Observed value ([None] = not found). *)
  | Write of string

type op = {
  proc : int;  (** Client id (operations of one client never overlap). *)
  invoked : int;  (** Virtual invocation time. *)
  responded : int;  (** Virtual response time. *)
  key : string;
  kind : op_kind;
}

val check : op list -> bool
(** Whether the history is linearizable. *)

val check_key : op list -> bool
(** Check a single-key history (all ops must share one key). *)
