type op_kind = Read of string option | Write of string

type op = { proc : int; invoked : int; responded : int; key : string; kind : op_kind }

(* Backtracking search for a linearization of one key's history. State is
   the current register value. A candidate for the next linearization
   point is any remaining operation invoked before every remaining
   operation's response (i.e., not real-time-after any remaining op). *)
let check_key ops =
  (match ops with
  | [] -> ()
  | first :: rest ->
    List.iter (fun o -> if o.key <> first.key then invalid_arg "check_key: multiple keys") rest);
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let used = Array.make n false in
  let rec go remaining state =
    if remaining = 0 then true
    else begin
      (* minimum response time among remaining ops *)
      let min_res = ref max_int in
      for i = 0 to n - 1 do
        if (not used.(i)) && arr.(i).responded < !min_res then min_res := arr.(i).responded
      done;
      let rec try_candidates i =
        if i >= n then false
        else if used.(i) || arr.(i).invoked > !min_res then try_candidates (i + 1)
        else begin
          let o = arr.(i) in
          let ok, state' =
            match o.kind with
            | Write v -> (true, Some v)
            | Read observed -> (observed = state, state)
          in
          if ok then begin
            used.(i) <- true;
            if go (remaining - 1) state' then true
            else begin
              used.(i) <- false;
              try_candidates (i + 1)
            end
          end
          else try_candidates (i + 1)
        end
      in
      try_candidates 0
    end
  in
  go n None

let check ops =
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let cur = Option.value (Hashtbl.find_opt by_key o.key) ~default:[] in
      Hashtbl.replace by_key o.key (o :: cur))
    ops;
  Hashtbl.fold (fun _ key_ops acc -> acc && check_key (List.rev key_ops)) by_key true
