(** DARE-style replication (Poke & Hoefler, HPDC'15; §8 of the Mu paper).

    Like Mu, DARE replicates with one-sided RDMA Writes from the leader.
    Unlike Mu, appending an entry takes {e separate, sequential} writes:
    the log entry itself, then the tail pointer of each replica's log, and
    a commit/apply pointer update — "which leads to more round-trips for
    replication" and, because the rounds serialize, their wire-latency
    variances add up (the tail-inflation effect discussed in §7.2).

    We model the three sequential one-sided rounds, each waiting for
    completion at a majority. *)

val rounds : int
(** Sequential one-sided rounds per replicated entry (3). *)

val create : Common.t -> Common.engine
(** A DARE engine with node 0 as leader. [replicate] must run in a fiber
    of node 0's host. *)
