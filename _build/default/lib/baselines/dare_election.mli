(** DARE's leader election — the RAFT-style protocol Mu's §8 contrasts
    with its own: "DARE has a heavier leader election protocol than Mu's,
    similar to that of RAFT, in which care is taken to ensure that at most
    one process considers itself leader at any point in time."

    Structure (after Poke & Hoefler, HPDC'15):

    - The leader pushes periodic {e heartbeats} (term + commit index) into
      each follower's control region with RDMA Writes.
    - Followers run randomized {e election timeouts}; because heartbeats
      are pushed over a network with latency variance, the timeout must be
      conservative — tens of milliseconds — which is exactly why DARE's
      fail-over sits near 30 ms while Mu's pull-score detector needs only
      ~600 µs (§1, §7.3).
    - On timeout a follower becomes a {e candidate}: it increments its
      term, writes vote requests into every control region, and the
      replicas' CPUs answer by writing their vote back (a vote is granted
      to the first candidate of a new term). A majority of votes makes the
      candidate leader; a heartbeat with a higher term demotes stale
      leaders and candidates.

    This is a faithful executable skeleton of the election (terms, votes,
    majorities, randomized timeouts, demotion), sufficient to {e measure}
    DARE's fail-over time on the same fabric Mu runs on; DARE's log
    replication rounds live in {!Dare}. *)

type role = Leader | Candidate | Follower

type t
(** One DARE replica group. *)

val create :
  ?election_timeout_ms:float -> ?heartbeat_ms:float -> Common.t -> t
(** Run DARE election over an existing cluster. Defaults: 10–20 ms
    randomized election timeout, 5 ms heartbeat period (DARE's published
    configuration regime). Spawns one protocol fiber per node. *)

val role : t -> int -> role
val term : t -> int -> int
val current_leader : t -> int option
(** The unique live leader, if exactly one node claims leadership. *)

val measure_failover : t -> rounds:int -> Sim.Stats.Samples.t
(** Repeatedly pause the current leader, measure until another node wins
    an election, then resume and let the group stabilize. Must run in a
    fiber. *)
