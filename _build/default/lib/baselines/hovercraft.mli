(** HovercRaft latency model (Kogias & Bugnion, EuroSys'20).

    The paper measures HovercRaft's request latency at 30-60 µs — "more
    than an order of magnitude more than that of Mu" — and drops it from
    the detailed comparison (§7). We keep it as a calibrated latency
    model so the Fig. 4 context and the fail-over comparison (~10 ms,
    §7.3) can be reported. *)

val replication : Sim.Distribution.t
(** Per-request replication latency. *)

val failover : Sim.Distribution.t
(** Fail-over latency (~10 ms). *)

val create : Common.t -> Common.engine
