lib/baselines/dare.mli: Common
