lib/baselines/dare.ml: Array Bytes Common Int64 List Sim
