lib/baselines/dare_election.mli: Common Sim
