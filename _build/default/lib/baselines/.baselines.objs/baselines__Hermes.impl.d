lib/baselines/hermes.ml: Array Bytes Common Int64 List Rdma Sim
