lib/baselines/apus.mli: Common
