lib/baselines/common.ml: Array Bytes Fmt Printf Rdma Sim
