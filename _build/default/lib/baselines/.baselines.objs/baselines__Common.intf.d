lib/baselines/common.mli: Bytes Rdma Sim
