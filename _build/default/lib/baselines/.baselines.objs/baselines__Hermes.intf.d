lib/baselines/hermes.mli: Common
