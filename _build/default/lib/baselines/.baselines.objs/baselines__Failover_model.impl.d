lib/baselines/failover_model.ml: Hovercraft Sim
