lib/baselines/dare_election.ml: Array Bytes Common Fun Int64 List Option Printf Rdma Sim
