lib/baselines/failover_model.mli: Sim
