lib/baselines/apus.ml: Array Bytes Common Fmt Int64 List Rdma Sim
