lib/baselines/hovercraft.mli: Common Sim
