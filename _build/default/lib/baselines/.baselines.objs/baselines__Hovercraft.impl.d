lib/baselines/hovercraft.ml: Array Common Sim
