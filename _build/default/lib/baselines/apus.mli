(** APUS-style replication (Wang et al., SoCC'17; §8 of the Mu paper).

    APUS is a Paxos on RDMA that {e involves the follower CPUs on the
    critical path}: the leader RDMA-Writes the request into each
    follower's log; follower threads poll their logs, process the entry,
    and acknowledge with a two-sided Send that the leader receives. Two
    wire legs plus two CPU hand-offs per request make it ~4x slower than
    Mu (Fig. 4) and expose it to OS scheduling jitter on every replica —
    the source of its long tail ("99-percentile executions up to 20 µs
    slower", §7.1).

    Follower poll loops are modelled with the MR write-notification hook
    plus an explicit uniform poll-phase delay, rather than simulating
    every empty poll iteration. *)

val follower_poll_interval : int
(** Follower log-poll period (ns); a request waits U(0, interval) before
    the follower notices it. *)

val follower_process : int
(** Follower CPU cost to validate and ack one entry. *)

val create : Common.t -> Common.engine
(** An APUS engine with node 0 as leader; spawns follower fibers. *)
