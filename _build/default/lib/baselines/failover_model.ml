let dare =
  (* Randomized election timeout plus reconciliation. *)
  Sim.Distribution.Shifted
    { base = 24_000_000.0; jitter = Uniform { lo = 0.0; hi = 12_000_000.0 } }

let hermes =
  (* Membership lease expiry dominates. *)
  Sim.Distribution.Shifted
    { base = 150_000_000.0; jitter = Lognormal { median = 12_000_000.0; sigma = 0.3 } }

let hovercraft = Hovercraft.failover

let sample_us d rng = float_of_int (Sim.Distribution.sample_ns d rng) /. 1000.0
