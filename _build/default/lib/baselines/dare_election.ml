type role = Leader | Candidate | Follower

(* Control-region layout inside each node's buffer (above the replication
   offsets used by {!Dare}): *)
let hb_term_off = 8192 (* leader's term *)
let hb_counter_off = 8200 (* liveness counter, bumped with every heartbeat *)
let req_term_off = 8208 (* candidate's vote request: term *)
let req_cand_off = 8216 (* ... and candidate id *)
let votes_off voter = 8224 + (8 * voter) (* grants written into the candidate *)

type node = {
  id : int;
  mutable role : role;
  mutable term : int;
  mutable voted_term : int;  (* highest term this node granted a vote in *)
  mutable last_hb_counter : int64;
  mutable last_hb_at : int;  (* local time of last observed progress *)
  mutable timeout : int;  (* current randomized election timeout (ns) *)
}

type t = {
  c : Common.t;
  nodes : node array;
  election_timeout : int * int;  (* randomized range, ns *)
  heartbeat : int;  (* period, ns *)
  check_interval : int;
  mutable wr : int;
}

let role t i = t.nodes.(i).role
let term t i = t.nodes.(i).term

let current_leader t =
  let leaders =
    Array.to_list t.nodes
    |> List.filter (fun n ->
           n.role = Leader
           && Sim.Host.liveness t.c.Common.hosts.(n.id) = Sim.Host.Running)
  in
  match leaders with [ n ] -> Some n.id | [] | _ :: _ :: _ -> None

let rand_timeout t rng =
  let lo, hi = t.election_timeout in
  lo + Sim.Rng.int rng (hi - lo)

let mr t i = t.c.Common.mrs.(i)
let get64 t i off = Rdma.Mr.get_i64 (mr t i) ~off
let now t = Sim.Engine.now t.c.Common.engine

(* Post one 8-byte write from [src] node to [dst] node and consume its
   completion (the node fiber is its CQ's only consumer during election). *)
let write64 t ~src ~dst ~off v =
  let buf = Bytes.create 8 in
  Bytes.set_int64_le buf 0 v;
  t.wr <- t.wr + 1;
  Rdma.Qp.post_write t.c.Common.qps.(src).(dst) ~wr_id:t.wr ~src:buf ~src_off:0 ~len:8
    ~mr:(mr t dst) ~dst_off:off;
  ignore (Rdma.Cq.await t.c.Common.cqs.(src))

let others t i = List.filter (fun j -> j <> i) (List.init (Common.n t.c) Fun.id)

let step_down n ~term ~at =
  n.role <- Follower;
  n.term <- term;
  n.last_hb_at <- at

(* One protocol step of node [i]; runs every [check_interval]. *)
let step t (n : node) rng hb_seq =
  let i = n.id in
  (* Observe heartbeats. *)
  let hb_term = Int64.to_int (get64 t i hb_term_off) in
  let hb_counter = get64 t i hb_counter_off in
  if hb_term >= n.term && Int64.compare hb_counter n.last_hb_counter > 0 then begin
    n.last_hb_counter <- hb_counter;
    n.last_hb_at <- now t;
    if hb_term > n.term || n.role = Candidate then step_down n ~term:hb_term ~at:(now t)
  end
  else if hb_term > n.term then step_down n ~term:hb_term ~at:(now t);
  (* Vote if a newer candidate asks (one vote per term). *)
  let req_term = Int64.to_int (get64 t i req_term_off) in
  if req_term > n.term || (req_term = n.term && req_term > n.voted_term) then begin
    let candidate = Int64.to_int (get64 t i req_cand_off) in
    if req_term > n.voted_term && candidate <> i then begin
      n.voted_term <- req_term;
      if req_term > n.term then step_down n ~term:req_term ~at:(now t);
      write64 t ~src:i ~dst:candidate ~off:(votes_off i) (Int64.of_int req_term);
      n.last_hb_at <- now t
    end
  end;
  match n.role with
  | Leader ->
    (* Push heartbeats. *)
    incr hb_seq;
    List.iter
      (fun j ->
        write64 t ~src:i ~dst:j ~off:hb_term_off (Int64.of_int n.term);
        write64 t ~src:i ~dst:j ~off:hb_counter_off (Int64.of_int !hb_seq))
      (others t i)
  | Follower | Candidate ->
    if now t - n.last_hb_at > n.timeout then begin
      (* Stand for election. *)
      n.role <- Candidate;
      n.term <- n.term + 1;
      n.voted_term <- n.term;
      n.timeout <- rand_timeout t rng;
      n.last_hb_at <- now t;
      List.iter
        (fun j ->
          write64 t ~src:i ~dst:j ~off:req_term_off (Int64.of_int n.term);
          write64 t ~src:i ~dst:j ~off:req_cand_off (Int64.of_int i))
        (others t i);
      (* Collect votes until won, demoted, or timed out. *)
      let deadline = now t + n.timeout in
      let won = ref false in
      while n.role = Candidate && (not !won) && now t < deadline do
        Sim.Host.idle t.c.Common.hosts.(i) t.check_interval;
        let votes =
          1
          + List.length
              (List.filter
                 (fun v -> Int64.to_int (get64 t i (votes_off v)) = n.term)
                 (others t i))
        in
        if votes >= Common.majority t.c then won := true
        else begin
          (* A higher-term heartbeat or request demotes us. *)
          let hb_term = Int64.to_int (get64 t i hb_term_off) in
          if hb_term > n.term then step_down n ~term:hb_term ~at:(now t)
        end
      done;
      if !won && n.role = Candidate then begin
        n.role <- Leader;
        (* Announce immediately. *)
        incr hb_seq;
        List.iter
          (fun j ->
            write64 t ~src:i ~dst:j ~off:hb_term_off (Int64.of_int n.term);
            write64 t ~src:i ~dst:j ~off:hb_counter_off (Int64.of_int !hb_seq))
          (others t i)
      end
    end

let create ?(election_timeout_ms = 30.0) ?(heartbeat_ms = 5.0) c =
  let lo = int_of_float (election_timeout_ms *. 0.75 *. 1.0e6) in
  let hi = int_of_float (election_timeout_ms *. 1.25 *. 1.0e6) in
  let t =
    {
      c;
      nodes =
        Array.init (Common.n c) (fun id ->
            {
              id;
              role = (if id = 0 then Leader else Follower);
              term = 1;
              voted_term = 1;
              last_hb_counter = 0L;
              last_hb_at = 0;
              timeout = 0;
            });
      election_timeout = (lo, hi);
      heartbeat = int_of_float (heartbeat_ms *. 1.0e6);
      check_interval = 1_000_000;
      wr = 100_000_000;
    }
  in
  Array.iter
    (fun (n : node) ->
      Sim.Host.spawn t.c.Common.hosts.(n.id)
        ~name:(Printf.sprintf "dare-election-%d" n.id)
        (fun () ->
          let rng = Sim.Host.rng t.c.Common.hosts.(n.id) in
          n.timeout <- rand_timeout t rng;
          let hb_seq = ref 0 in
          let rec loop () =
            step t n rng hb_seq;
            (* Leaders pace by the heartbeat period; others poll faster. *)
            Sim.Host.idle t.c.Common.hosts.(n.id)
              (if n.role = Leader then t.heartbeat else t.check_interval);
            loop ()
          in
          loop ()))
    t.nodes;
  t

let measure_failover t ~rounds =
  let e = t.c.Common.engine in
  let samples = Sim.Stats.Samples.create () in
  let wait_for pred =
    while not (pred ()) do
      Sim.Engine.sleep e 200_000
    done
  in
  for _ = 1 to rounds do
    wait_for (fun () -> current_leader t <> None);
    Sim.Engine.sleep e 3_000_000;
    let leader = Option.get (current_leader t) in
    let t0 = now t in
    Sim.Host.pause t.c.Common.hosts.(leader);
    wait_for (fun () ->
        match current_leader t with Some l -> l <> leader | None -> false);
    Sim.Stats.Samples.add samples (now t - t0);
    Sim.Host.resume t.c.Common.hosts.(leader);
    (* The resumed ex-leader sees the higher term and steps down. *)
    wait_for (fun () -> current_leader t <> None)
  done;
  samples
