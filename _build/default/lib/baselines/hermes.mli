(** Hermes-style replication (Katsarakis et al., ASPLOS'20; §8).

    Hermes is a broadcast-based, CPU-active protocol: a write coordinator
    sends {e invalidations} (INV) to all replicas, each replica's CPU
    processes the INV and acknowledges (ACK), and once {e all} replicas
    acked, the coordinator broadcasts {e validations} (VAL) that unblock
    reads. One round trip plus remote CPU involvement per write — faster
    than DARE/APUS but still ~2.7x Mu's single one-sided write (Fig. 4),
    and needing all (not a majority of) replicas to respond.

    VAL messages are off the measured critical path (reads at the
    replicas block on them, not the coordinator's write), so the span is
    measured up to the last ACK, as in the Hermes paper. *)

val inv_process : int
(** Replica CPU cost to process an INV and emit the ACK. *)

val create : Common.t -> Common.engine
