(** Fail-over latency models for the comparison systems.

    The paper's introduction reports fail-over times of prior systems —
    "HovercRaft takes 10 milliseconds, DARE 30 milliseconds, and Hermes at
    least 150 milliseconds" — attributing them to conservative timeouts
    that must absorb network-latency variance (§1, §7.3). We model each as
    the sum of its published detection timeout and a reconfiguration term:

    - {b DARE}: RAFT-like randomized election timeouts plus log
      reconciliation (~30 ms).
    - {b Hermes}: membership-lease expiry before a new coordinator may
      write (>= 150 ms).
    - {b HovercRaft}: Raft with aggressive 10 ms timeouts.

    Mu's measured fail-over (Fig. 6) is produced by the real protocol in
    {!Workload.Experiments.failover}; these models exist to print the
    order-of-magnitude comparison next to it. *)

val dare : Sim.Distribution.t
val hermes : Sim.Distribution.t
val hovercraft : Sim.Distribution.t

val sample_us : Sim.Distribution.t -> Sim.Rng.t -> float
(** One fail-over sample in microseconds. *)
