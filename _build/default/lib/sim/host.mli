(** Simulated host: a machine running one replica process.

    A host models the CPU-side behaviour that the paper's evaluation
    depends on: pinned threads whose compute takes virtual time, rare OS
    descheduling events ("in rare cases, the leader process is descheduled
    by the OS for tens of microseconds", §7.3), and failure injection.

    Failure modes, matching §7.3 and the crash-failure model of §2.2:
    - {!pause}/{!resume}: the process is delayed (the paper's fail-over
      experiment injects failures this way). Its NIC keeps serving one-sided
      operations; its heartbeat counter stops advancing.
    - {!stop_process}: the process crashes. Registered memory stays pinned
      and remotely accessible, but no fiber of this host runs again.
    - {!kill_host}: the machine dies; its NIC stops responding and remote
      operations targeting it fail after the RC transport timeout. *)

type t

type liveness =
  | Running
  | Paused  (** Delayed: fibers block at their next {!cpu} call. *)
  | Process_stopped  (** Process crashed; memory still served by the NIC. *)
  | Host_dead  (** Machine crashed; NIC unreachable. *)

val create : Engine.t -> Calibration.t -> id:int -> name:string -> t
val engine : t -> Engine.t
val calibration : t -> Calibration.t
val id : t -> int
val name : t -> string
val rng : t -> Rng.t
val liveness : t -> liveness

val nic_reachable : t -> bool
(** The NIC answers remote operations ([Running], [Paused] or
    [Process_stopped]). *)

val process_alive : t -> bool
(** Fibers of this host make progress ([Running] or [Paused]). *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Spawn a fiber belonging to this host. The body should call {!cpu} (or
    {!idle}) regularly; that is where pauses and crashes take effect. *)

val cpu : t -> int -> unit
(** Consume [ns] of CPU. Adds occasional scheduling jitter; blocks while the
    host is paused; parks forever if the process is stopped or the host is
    dead. Must be called from a fiber. *)

val idle : t -> int -> unit
(** Sleep [ns] without consuming CPU (no jitter), still honouring pause and
    crash states on wake-up. *)

val check : t -> unit
(** Honour pause/crash state without consuming time. *)

val pause : t -> unit
val resume : t -> unit
val stop_process : t -> unit
val kill_host : t -> unit
