type t = { mutable state : int64; mutable spare : float option }

let create seed = { state = seed; spare = None }

(* splitmix64 step: state += golden gamma; output mixed. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative as an OCaml int;
     modulo bias is negligible for bound << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  match t.spare with
  | Some g ->
    t.spare <- None;
    g
  | None ->
    (* Box-Muller; guard against log 0. *)
    let rec draw () =
      let u = float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () and u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    r *. cos theta

let exponential t ~mean =
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else u
  in
  -.mean *. log (draw ())

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let pareto t ~scale ~shape =
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else u
  in
  scale /. (draw () ** (1.0 /. shape))
