(** Latency distributions.

    Latencies in the simulator are described declaratively so that
    calibration constants ({!Calibration}) read like a datasheet. All values
    are in nanoseconds (as floats while composing; sampled to integer ns). *)

type t =
  | Constant of float  (** Always the same value. *)
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; std : float }
      (** Gaussian, truncated below at 0. *)
  | Lognormal of { median : float; sigma : float }
      (** Lognormal parameterised by its median (ns) and shape [sigma];
          heavier right tail as [sigma] grows. *)
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }
      (** Heavy tail with minimum [scale]. *)
  | Shifted of { base : float; jitter : t }
      (** Deterministic floor plus stochastic jitter — the common shape for
          a network hop: propagation + queueing. *)
  | Mixture of (float * t) list
      (** Weighted mixture; weights need not sum to 1 (normalised). Used
          for rare-event tails such as OS descheduling. *)

val sample : t -> Rng.t -> float
(** Draw one value (ns, >= 0). *)

val sample_ns : t -> Rng.t -> int
(** [sample] rounded to integer nanoseconds, clamped to >= 0. *)

val mean : t -> float
(** Analytic mean where it exists; used by tests to sanity-check sampling.
    For [Pareto] with [shape <= 1] the mean diverges and this returns
    [infinity]. *)

val pp : t Fmt.t
