(** Timing calibration — the simulator's stand-in for Table 1.

    The paper's testbed is a 4-node cluster of 2x Xeon E5-2640 v4 hosts with
    Mellanox ConnectX-4 NICs on 100 Gb/s InfiniBand (Table 1). Each constant
    below is pinned by a specific measurement in the paper; the doc comment
    says which. All times are nanoseconds unless noted.

    These constants feed the {!Rdma} NIC/fabric model and the application
    transport models; the protocols themselves contain no magic timing. *)

type t = {
  (* --- RDMA data path (pins Fig. 3/4: Mu 64 B replication ~1.3 us median,
     99p ~1.6 us, flat below the inline threshold) --- *)
  wr_post : int;  (** CPU cost to post one work request (~80 ns). *)
  nic_tx : int;  (** Requester NIC processing per WR. *)
  nic_rx : int;  (** Responder NIC processing per packet (DMA setup). *)
  wire : Distribution.t;  (** One-way wire latency incl. switch. *)
  wire_byte : float;  (** Serialisation per payload byte (100 Gb/s). *)
  inline_threshold : int;  (** Max inlined payload (256 B on ConnectX-4, §6). *)
  dma_fetch : int;  (** Extra DMA to fetch non-inlined payload (§7.1). *)
  dma_byte : float;  (** Per-byte cost of that DMA fetch. *)
  cq_poll : int;  (** Completion-poll detection overhead. *)
  rnic_timeout : int;  (** RC transport timeout for a dead host (§5.1 "longer
                          RDMA timeout"). *)
  pmem_flush : int;  (** Extra responder-side latency to flush an RDMA Write
                         to remote persistent memory before acking — the
                         paper's anticipated persistence extension (§1,
                         SNIA "Extending RDMA for Persistent Memory over
                         Fabrics"). Applies to writes into MRs registered
                         as persistent. *)

  (* --- Permission switching (pins Fig. 2 and the 244 us switch share of
     Fig. 6) --- *)
  perm_qp_flags : Distribution.t;  (** Change QP access flags (~120 us). *)
  perm_qp_restart : Distribution.t;  (** Cycle QP reset/init/RTR/RTS (~10x
                                         slower than flags, Fig. 2). *)
  perm_mr_rereg_base : float;  (** MR re-registration, size-independent part. *)
  perm_mr_rereg_per_mib : float;  (** MR re-registration slope (ns per MiB);
                                      reaches ~100 ms at 4 GiB (Fig. 2). *)

  (* --- Failure detection (pins Fig. 6: detection ~600 us) --- *)
  hb_increment_interval : int;  (** Leader heartbeat increment period. *)
  fd_read_interval : int;  (** Follower counter-read period (~40 us; 14
                               score decrements to fail ≈ 600 us). *)
  score_min : int;
  score_max : int;  (** Score cap, 15 (§5.1). *)
  score_fail : int;  (** Failure threshold, 2 (§5.1). *)
  score_recover : int;  (** Recovery threshold, 6 (§5.1). *)

  (* --- Host CPU model (pins Fig. 6 detection variance: "rare cases, the
     leader process is descheduled by the OS for tens of microseconds") --- *)
  cpu_jitter_period : int;  (** Mean CPU ns between descheduling events. *)
  cpu_jitter : Distribution.t;  (** Descheduling duration. *)
  memcpy_request : int;  (** Fixed cost to stage one request into the RDMA
                             buffer — the Fig. 7 throughput wall. *)
  memcpy_byte : float;  (** Per-byte staging cost. *)

  (* --- Attach modes (pins Fig. 3: handover ≈ +400 ns over standalone) --- *)
  handover_hop : int;  (** Cache-coherence miss handing a request between
                           application and replication threads. *)
  direct_interference : int;  (** Extra latency when app and replication
                                  share a thread (direct mode). *)

  (* --- Client transports for the applications (pins Fig. 5) --- *)
  tcp_rtt_memcached : Distribution.t;  (** TCP client RTT, Memcached. *)
  tcp_rtt_redis : Distribution.t;  (** TCP client RTT, Redis. *)
  erpc_rtt : Distribution.t;  (** eRPC RTT for Liquibook (§7.2: large
                                  variance even unreplicated). *)
  herd_rtt : Distribution.t;  (** HERD RDMA client RTT. *)

  (* --- Application compute --- *)
  order_match : int;  (** Order-book matching per order. *)
  kv_op : int;  (** KV get/put compute. *)
}

val default : t
(** Values calibrated to the paper's evaluation, per the table in
    DESIGN.md §7. *)

val mr_rereg_time : t -> bytes:int -> Distribution.t
(** Fig. 2 model: MR re-registration cost for a region of [bytes]. *)
