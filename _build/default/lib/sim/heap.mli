(** Minimal binary min-heap specialised for the event queue.

    Elements are ordered by an integer key with an integer tiebreaker
    (insertion sequence), giving deterministic FIFO order among events
    scheduled for the same instant. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val peek_key : 'a t -> (int * int) option
(** Key and sequence of the minimum element, if any. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)
