lib/sim/distribution.ml: Float Fmt List Rng
