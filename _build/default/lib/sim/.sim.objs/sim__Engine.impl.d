lib/sim/engine.ml: Effect Fun Heap List Printexc Printf Queue Rng
