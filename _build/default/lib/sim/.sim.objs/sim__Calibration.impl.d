lib/sim/calibration.ml: Distribution
