lib/sim/host.mli: Calibration Engine Rng
