lib/sim/host.ml: Calibration Distribution Engine Printf Rng
