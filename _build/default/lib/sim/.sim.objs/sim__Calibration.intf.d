lib/sim/calibration.mli: Distribution
