lib/sim/rng.mli:
