lib/sim/distribution.mli: Fmt Rng
