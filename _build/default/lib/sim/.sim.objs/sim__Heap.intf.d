lib/sim/heap.mli:
