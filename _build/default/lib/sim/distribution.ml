type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Normal of { mean : float; std : float }
  | Lognormal of { median : float; sigma : float }
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }
  | Shifted of { base : float; jitter : t }
  | Mixture of (float * t) list

let rec sample t rng =
  let v =
    match t with
    | Constant c -> c
    | Uniform { lo; hi } -> lo +. ((hi -. lo) *. Rng.float rng)
    | Normal { mean; std } -> mean +. (std *. Rng.gaussian rng)
    | Lognormal { median; sigma } -> Rng.lognormal rng ~mu:(log median) ~sigma
    | Exponential { mean } -> Rng.exponential rng ~mean
    | Pareto { scale; shape } -> Rng.pareto rng ~scale ~shape
    | Shifted { base; jitter } -> base +. sample jitter rng
    | Mixture comps -> sample_mixture comps rng
  in
  Float.max 0.0 v

and sample_mixture comps rng =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 comps in
  if total <= 0.0 then invalid_arg "Distribution.Mixture: non-positive weights";
  let u = Rng.float rng *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Distribution.Mixture: empty"
    | [ (_, d) ] -> sample d rng
    | (w, d) :: rest ->
      let acc = acc +. w in
      if u < acc then sample d rng else pick acc rest
  in
  pick 0.0 comps

let sample_ns t rng =
  let v = sample t rng in
  if v <= 0.0 then 0 else int_of_float (Float.round v)

let rec mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Normal { mean = m; _ } -> m
  | Lognormal { median; sigma } -> median *. exp (sigma *. sigma /. 2.0)
  | Exponential { mean = m } -> m
  | Pareto { scale; shape } ->
    if shape <= 1.0 then infinity else scale *. shape /. (shape -. 1.0)
  | Shifted { base; jitter } -> base +. mean jitter
  | Mixture comps ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 comps in
    List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean d)) 0.0 comps

let rec pp ppf = function
  | Constant c -> Fmt.pf ppf "const(%gns)" c
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform(%g,%g)" lo hi
  | Normal { mean; std } -> Fmt.pf ppf "normal(%g,%g)" mean std
  | Lognormal { median; sigma } -> Fmt.pf ppf "lognormal(med=%g,s=%g)" median sigma
  | Exponential { mean } -> Fmt.pf ppf "exp(%g)" mean
  | Pareto { scale; shape } -> Fmt.pf ppf "pareto(%g,%g)" scale shape
  | Shifted { base; jitter } -> Fmt.pf ppf "%g+%a" base pp jitter
  | Mixture comps ->
    Fmt.pf ppf "mix(%a)"
      (Fmt.list ~sep:Fmt.comma (fun ppf (w, d) -> Fmt.pf ppf "%g:%a" w pp d))
      comps
