type t = {
  wr_post : int;
  nic_tx : int;
  nic_rx : int;
  wire : Distribution.t;
  wire_byte : float;
  inline_threshold : int;
  dma_fetch : int;
  dma_byte : float;
  cq_poll : int;
  rnic_timeout : int;
  pmem_flush : int;
  perm_qp_flags : Distribution.t;
  perm_qp_restart : Distribution.t;
  perm_mr_rereg_base : float;
  perm_mr_rereg_per_mib : float;
  hb_increment_interval : int;
  fd_read_interval : int;
  score_min : int;
  score_max : int;
  score_fail : int;
  score_recover : int;
  cpu_jitter_period : int;
  cpu_jitter : Distribution.t;
  memcpy_request : int;
  memcpy_byte : float;
  handover_hop : int;
  direct_interference : int;
  tcp_rtt_memcached : Distribution.t;
  tcp_rtt_redis : Distribution.t;
  erpc_rtt : Distribution.t;
  herd_rtt : Distribution.t;
  order_match : int;
  kv_op : int;
}

let default =
  {
    (* One-sided 64 B write completes in ~1.25 us median: post 80 + tx 150 +
       wire ~290 + rx 150 + ack wire ~290 + cq 100, plus jitter. Calibrated
       so Mu's propose (write to 2 followers, wait for the first) lands at
       1.30 us median / ~1.6 us 99p, matching Fig. 4. *)
    wr_post = 80;
    nic_tx = 200;
    nic_rx = 200;
    wire = Shifted { base = 280.0; jitter = Lognormal { median = 70.0; sigma = 0.70 } };
    wire_byte = 0.08;
    (* 100 Gb/s = 12.5 GB/s *)
    inline_threshold = 256;
    dma_fetch = 300;
    dma_byte = 0.22;
    cq_poll = 100;
    rnic_timeout = 4_000_000;
    (* RDMA flush-to-persistence extension (SNIA, cited in the paper's
       §1 footnote): the remote NIC confirms durability before acking. *)
    pmem_flush = 300;
    (* 4 ms: the "longer RDMA timeout" of §5.1 *)
    (* Fig. 2: QP access-flag change ~120 us, independent of MR size; QP
       state cycling ~10x slower; two flag changes per replica during
       fail-over gives the ~244 us switch share of Fig. 6. *)
    perm_qp_flags =
      Shifted { base = 105_000.0; jitter = Lognormal { median = 15_000.0; sigma = 0.35 } };
    perm_qp_restart =
      Shifted { base = 1_050_000.0; jitter = Lognormal { median = 150_000.0; sigma = 0.35 } };
    perm_mr_rereg_base = 150_000.0;
    perm_mr_rereg_per_mib = 24_000.0;
    (* 24 us/MiB -> ~98 ms at 4 GiB, Fig. 2 *)
    hb_increment_interval = 5_000;
    fd_read_interval = 40_000;
    (* Score drops from cap 15 to below fail 2 in 14 reads: 14 x 40 us =
       560 us, plus read phase and jitter ≈ 600 us detection (Fig. 6). *)
    score_min = 0;
    score_max = 15;
    score_fail = 2;
    score_recover = 6;
    cpu_jitter_period = 30_000_000;
    cpu_jitter = Lognormal { median = 12_000.0; sigma = 0.7 };
    (* Staging one 64 B request into the RDMA buffer costs ~22 ns ->
       throughput wall ~45 ops/us (Fig. 7). *)
    memcpy_request = 8;
    memcpy_byte = 0.2;
    handover_hop = 400;
    (* §7.1: handover adds ≈400 ns *)
    direct_interference = 150;
    tcp_rtt_memcached =
      Shifted { base = 95_000.0; jitter = Lognormal { median = 18_000.0; sigma = 0.45 } };
    tcp_rtt_redis =
      Shifted { base = 115_000.0; jitter = Lognormal { median = 20_000.0; sigma = 0.45 } };
    (* Liquibook unreplicated is 4.08 us median with a large client-side
       tail (§7.2); matching compute below accounts for ~0.9 us. *)
    erpc_rtt = Shifted { base = 2_300.0; jitter = Lognormal { median = 850.0; sigma = 0.85 } };
    herd_rtt = Shifted { base = 1_750.0; jitter = Lognormal { median = 480.0; sigma = 0.45 } };
    order_match = 900;
    kv_op = 300;
  }

let mr_rereg_time t ~bytes =
  let mib = float_of_int bytes /. (1024.0 *. 1024.0) in
  Distribution.Shifted
    {
      base = t.perm_mr_rereg_base +. (t.perm_mr_rereg_per_mib *. mib);
      jitter = Lognormal { median = t.perm_mr_rereg_base /. 10.0; sigma = 0.3 };
    }
