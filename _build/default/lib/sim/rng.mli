(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that whole-system runs are reproducible from a single seed.
    The generator is splitmix64: tiny state, good statistical quality, and
    cheap splitting for deriving independent per-component streams. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. Used to give each host/NIC its own stream so
    adding a component does not perturb the draws of the others. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller, one spare cached). *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal deviate: [exp (mu + sigma * gaussian)]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate with minimum [scale] and tail index [shape]. *)
