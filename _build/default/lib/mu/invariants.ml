type violation = { replica : int; index : int option; message : string }

let pp_violation ppf v =
  match v.index with
  | Some i -> Fmt.pf ppf "replica %d, slot %d: %s" v.replica i v.message
  | None -> Fmt.pf ppf "replica %d: %s" v.replica v.message

let live (r : Replica.t) = not r.Replica.removed

let slot_value (r : Replica.t) idx =
  Option.map (fun (s : Log.slot) -> s.Log.value) (Log.read_slot r.Replica.log idx)

let agreement replicas =
  let out = ref [] in
  Array.iter
    (fun (a : Replica.t) ->
      Array.iter
        (fun (b : Replica.t) ->
          if a.Replica.id < b.Replica.id && live a && live b then begin
            let bound = min (Log.fuo a.Replica.log) (Log.fuo b.Replica.log) in
            for i = 0 to bound - 1 do
              match slot_value a i, slot_value b i with
              | Some va, Some vb when not (Bytes.equal va vb) ->
                out :=
                  {
                    replica = a.Replica.id;
                    index = Some i;
                    message =
                      Printf.sprintf "disagrees with replica %d on a decided slot"
                        b.Replica.id;
                  }
                  :: !out
              | _ -> ()
            done
          end)
        replicas)
    replicas;
  !out

let no_holes replicas =
  let out = ref [] in
  Array.iter
    (fun (r : Replica.t) ->
      if live r then
        for i = r.Replica.applied to Log.fuo r.Replica.log - 1 do
          if slot_value r i = None then
            out :=
              { replica = r.Replica.id; index = Some i; message = "hole below the FUO" }
              :: !out
        done)
    replicas;
  !out

let decided_at_majority replicas =
  let out = ref [] in
  let n =
    Array.to_list replicas |> List.filter live |> List.length
  in
  let majority = (n / 2) + 1 in
  Array.iter
    (fun (r : Replica.t) ->
      if live r then
        for i = r.Replica.applied to Log.fuo r.Replica.log - 1 do
          (* Count copies among replicas that still retain index i; those
             whose log head moved past it have applied (hence once held)
             the entry, so they count as holders too. *)
          let copies =
            Array.to_list replicas
            |> List.filter (fun (p : Replica.t) ->
                   live p && (p.Replica.applied > i || slot_value p i <> None))
            |> List.length
          in
          if copies < majority then
            out :=
              {
                replica = r.Replica.id;
                index = Some i;
                message = Printf.sprintf "decided entry present at only %d copies" copies;
              }
              :: !out
        done)
    replicas;
  !out

let single_writer replicas =
  let out = ref [] in
  Array.iter
    (fun (r : Replica.t) ->
      if live r then begin
        let writers =
          List.filter
            (fun (p : Replica.peer) ->
              (Rdma.Qp.access p.Replica.repl_qp).Rdma.Verbs.remote_write)
            r.Replica.peers
        in
        if List.length writers > 1 then
          out :=
            {
              replica = r.Replica.id;
              index = None;
              message =
                Printf.sprintf "grants write access to %d remote replicas"
                  (List.length writers);
            }
            :: !out
      end)
    replicas;
  !out

let applied_within_fuo replicas =
  let out = ref [] in
  Array.iter
    (fun (r : Replica.t) ->
      if live r && r.Replica.applied > Log.fuo r.Replica.log then
        out :=
          {
            replica = r.Replica.id;
            index = None;
            message =
              Printf.sprintf "applied %d past its FUO %d" r.Replica.applied
                (Log.fuo r.Replica.log);
          }
          :: !out)
    replicas;
  !out

let check_all replicas =
  List.concat
    [
      agreement replicas;
      no_holes replicas;
      decided_at_majority replicas;
      single_writer replicas;
      applied_within_fuo replicas;
    ]

let assert_all replicas =
  match check_all replicas with
  | [] -> ()
  | violations ->
    failwith
      (Fmt.str "@[<v>safety invariants violated:@,%a@]"
         (Fmt.list ~sep:Fmt.cut pp_violation)
         violations)
