(** The consensus log (Listing 1, §4.1) and its byte layout inside an RDMA
    memory region.

    Layout (little-endian):
    {v
      offset 0   minProposal : int64
      offset 8   FUO         : int64      (first undecided offset)
      offset 16  slot[0], slot[1], ...
    v}
    Each slot holds one (proposal, value) tuple plus a {e canary} byte
    (§4.2 "Replayer"). Entries are variable-length so that small payloads
    stay below the RDMA inline threshold:
    {v
      +0             proposal : int64     (0 = empty)
      +8             length   : int32
      +12 .. +12+len value bytes
      +12+len        canary   : byte      (1 once the entry is complete)
    v}
    The canary is the last byte of the written image; under the NIC's
    left-to-right DMA semantics (assumed by the paper and by this model,
    where writes apply atomically) a reader that sees the canary set also
    sees the full entry.

    Logical slot indices grow without bound; the physical log is circular
    ({!slot_offset} maps index → offset modulo capacity, §5.3). Recycled
    slots must be zeroed before reuse so stale canaries cannot be mistaken
    for fresh entries. *)

type t

(** How entry completeness is detected (§4.2 "Replayer"):
    - [Flag]: the final byte is set to 1; correctness relies on the NIC's
      left-to-right DMA semantics (the paper's production choice).
    - [Checksum]: the final byte is a one-byte checksum of the entry, "the
      follower could read the canary and wait for the checksum to match
      the data" — no write-ordering assumption, at the cost of summing the
      payload on every read. *)
type canary_mode = Flag | Checksum

type slot = { proposal : int64; value : bytes }

val required_size : slots:int -> value_cap:int -> int
(** Bytes of MR needed for a log with the given geometry. *)

val attach : ?canary:canary_mode -> Rdma.Mr.t -> slots:int -> value_cap:int -> t
(** Interpret [mr] as a log ([canary] defaults to [Flag]). Raises if the
    MR is too small. *)

val mr : t -> Rdma.Mr.t
val slots : t -> int
val value_cap : t -> int

(** {1 Offsets, for composing one-sided operations} *)

val min_proposal_offset : int
val fuo_offset : int
val slot_size : t -> int
val slot_offset : t -> int -> int
(** Physical byte offset of a logical index (wraps modulo capacity). *)

val entry_bytes : value_len:int -> int
(** Bytes actually written for an entry with a [value_len]-byte payload
    (header + value + canary) — the RDMA Write length on the fast path. *)

(** {1 Local access (the owner's view)} *)

val min_proposal : t -> int64
val set_min_proposal : t -> int64 -> unit
val fuo : t -> int
val set_fuo : t -> int -> unit

val read_slot : t -> int -> slot option
(** [None] while empty or incomplete (canary unset). *)

val read_slot_raw : t -> int -> Bytes.t
(** The raw slot image (for copying logs during leader catch-up). *)

val encode_slot : t -> proposal:int64 -> value:bytes -> Bytes.t
(** Wire image of a complete entry ({!entry_bytes} long, canary set) — what
    the leader RDMA-writes into follower logs. Raises if [value] exceeds
    the value capacity. *)

val decode_slot : ?canary:canary_mode -> Bytes.t -> slot option
(** Parse a slot image (as produced by {!encode_slot} or read remotely). *)

val write_slot_local : t -> int -> proposal:int64 -> value:bytes -> unit
val write_slot_raw_local : t -> int -> Bytes.t -> unit
val zero_slot_local : t -> int -> unit

val pp : t Fmt.t
(** Debug rendering of header and first non-empty slots. *)
