let self_advance_fuo t =
  let log = t.Replica.log in
  let progressed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let fuo = Log.fuo log in
    match Log.read_slot log fuo, Log.read_slot log (fuo + 1) with
    | Some _, Some _ ->
      (* Entry [fuo] is decided: the leader would not have started
         [fuo+1] otherwise (commit piggybacking). *)
      Log.set_fuo log (fuo + 1);
      progressed := true
    | Some _, None | None, _ -> continue_ := false
  done;
  !progressed

let start t =
  Sim.Host.spawn t.Replica.host ~name:"replayer" (fun () ->
      let rec loop () =
        if t.Replica.stop || t.Replica.removed then ()
        else begin
          let advanced =
            if t.Replica.role = Replica.Follower then self_advance_fuo t else false
          in
          let before = t.Replica.applied in
          Replica.apply_committed t;
          let progressed = advanced || t.Replica.applied > before in
          if progressed then Sim.Host.check t.Replica.host
          else Sim.Host.idle t.Replica.host t.Replica.config.Config.replayer_poll;
          loop ()
        end
      in
      loop ())
