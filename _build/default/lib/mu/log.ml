type canary_mode = Flag | Checksum

type t = {
  mr : Rdma.Mr.t;
  slots : int;
  value_cap : int;
  slot_size : int;
  canary : canary_mode;
}

type slot = { proposal : int64; value : bytes }

(* One-byte entry checksum, never zero so an absent entry (zeroed slot)
   can always be told apart from a present one. *)
let checksum ~proposal ~value =
  let acc = ref (Int64.to_int (Int64.logand proposal 0xffL)) in
  acc := !acc + Int64.to_int (Int64.logand (Int64.shift_right_logical proposal 8) 0xffL);
  acc := !acc + Bytes.length value;
  Bytes.iter (fun c -> acc := !acc + Char.code c) value;
  Char.chr (1 + (!acc mod 255))

let header_size = 16
let min_proposal_offset = 0
let fuo_offset = 8
let entry_header = 12 (* proposal(8) + length(4) *)

let slot_size_for ~value_cap =
  (* proposal(8) + length(4) + value + canary(1), rounded up to 8. *)
  let raw = entry_header + value_cap + 1 in
  (raw + 7) / 8 * 8

let required_size ~slots ~value_cap = header_size + (slots * slot_size_for ~value_cap)

let attach ?(canary = Flag) mr ~slots ~value_cap =
  if slots <= 0 then invalid_arg "Log.attach: slots must be positive";
  if value_cap <= 0 then invalid_arg "Log.attach: value_cap must be positive";
  let need = required_size ~slots ~value_cap in
  if Rdma.Mr.size mr < need then
    invalid_arg
      (Printf.sprintf "Log.attach: MR too small (%d < %d)" (Rdma.Mr.size mr) need);
  { mr; slots; value_cap; slot_size = slot_size_for ~value_cap; canary }

let mr t = t.mr
let slots t = t.slots
let value_cap t = t.value_cap
let slot_size t = t.slot_size
let slot_offset t idx = header_size + (idx mod t.slots * t.slot_size)
let entry_bytes ~value_len = entry_header + value_len + 1

let min_proposal t = Rdma.Mr.get_i64 t.mr ~off:min_proposal_offset
let set_min_proposal t v = Rdma.Mr.set_i64 t.mr ~off:min_proposal_offset v
let fuo t = Int64.to_int (Rdma.Mr.get_i64 t.mr ~off:fuo_offset)
let set_fuo t v = Rdma.Mr.set_i64 t.mr ~off:fuo_offset (Int64.of_int v)

(* An entry is written as one contiguous image: proposal, length, value
   bytes, then the canary as the very last byte. Under left-to-right DMA
   the canary lands after the data it guards; a reader validates the
   length field (written before the canary) and then checks the canary at
   [entry_header + length]. *)
let decode_image buf off ~value_cap ~canary =
  let proposal = Bytes.get_int64_le buf off in
  if proposal = 0L then None
  else
    let len = Int32.to_int (Bytes.get_int32_le buf (off + 8)) in
    if len < 0 || len > value_cap then None
    else
      let value = Bytes.sub buf (off + entry_header) len in
      let byte = Bytes.get buf (off + entry_header + len) in
      let complete =
        match canary with
        | Flag -> byte <> '\000'
        | Checksum -> byte = checksum ~proposal ~value
      in
      if complete then Some { proposal; value } else None

let read_slot t idx =
  decode_image (Rdma.Mr.buffer t.mr) (slot_offset t idx) ~value_cap:t.value_cap
    ~canary:t.canary

let read_slot_raw t idx = Rdma.Mr.get_bytes t.mr ~off:(slot_offset t idx) ~len:t.slot_size

let encode_slot t ~proposal ~value =
  let len = Bytes.length value in
  if len > t.value_cap then invalid_arg "Log.encode_slot: value exceeds capacity";
  if proposal = 0L then invalid_arg "Log.encode_slot: proposal must be non-zero";
  let img = Bytes.make (entry_bytes ~value_len:len) '\000' in
  Bytes.set_int64_le img 0 proposal;
  Bytes.set_int32_le img 8 (Int32.of_int len);
  Bytes.blit value 0 img entry_header len;
  Bytes.set img (entry_header + len)
    (match t.canary with Flag -> '\001' | Checksum -> checksum ~proposal ~value);
  img

let decode_slot ?(canary = Flag) img =
  if Bytes.length img < entry_header + 1 then None
  else decode_image img 0 ~value_cap:(Bytes.length img - entry_header - 1) ~canary

let write_slot_raw_local t idx img =
  let len = Bytes.length img in
  if len > t.slot_size then invalid_arg "Log.write_slot_raw_local: image too large";
  Rdma.Mr.set_bytes t.mr ~off:(slot_offset t idx) img

let write_slot_local t idx ~proposal ~value =
  write_slot_raw_local t idx (encode_slot t ~proposal ~value)

let zero_slot_local t idx =
  Rdma.Mr.set_bytes t.mr ~off:(slot_offset t idx) (Bytes.make t.slot_size '\000')

let pp ppf t =
  Fmt.pf ppf "log{minProp=%Ld; fuo=%d" (min_proposal t) (fuo t);
  let shown = ref 0 in
  let idx = ref 0 in
  while !shown < 8 && !idx < t.slots do
    (match read_slot t !idx with
    | Some s ->
      incr shown;
      Fmt.pf ppf "; [%d]=(%Ld,%dB)" !idx s.proposal (Bytes.length s.value)
    | None -> ());
    incr idx
  done;
  Fmt.pf ppf "}"
