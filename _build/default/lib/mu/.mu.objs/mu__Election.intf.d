lib/mu/election.mli: Replica
