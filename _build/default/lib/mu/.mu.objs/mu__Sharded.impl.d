lib/mu/sharded.ml: Array Char Smr String
