lib/mu/log.ml: Bytes Char Fmt Int32 Int64 Printf Rdma
