lib/mu/replica.ml: Array Config Hashtbl Int64 List Log Metrics Printf Rdma Sim
