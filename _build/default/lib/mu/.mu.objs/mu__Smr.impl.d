lib/mu/smr.ml: Array Bytes Config Election Hashtbl Int32 Int64 List Log Option Permissions Queue Rdma Recycler Replayer Replica Replication Sim
