lib/mu/smr.mli: Config Replica Sim
