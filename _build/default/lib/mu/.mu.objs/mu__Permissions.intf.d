lib/mu/permissions.mli: Replica
