lib/mu/election.ml: Bytes Config Hashtbl Int64 List Logs Metrics Option Printf Rdma Replica Sim
