lib/mu/metrics.ml: Fmt List
