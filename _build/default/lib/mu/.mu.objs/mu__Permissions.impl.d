lib/mu/permissions.ml: Bytes Hashtbl Int64 List Logs Metrics Option Rdma Replica Sim
