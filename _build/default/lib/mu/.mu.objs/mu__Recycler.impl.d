lib/mu/recycler.ml: Bytes Config Hashtbl Int64 List Log Metrics Rdma Replica Sim
