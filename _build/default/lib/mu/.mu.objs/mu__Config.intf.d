lib/mu/config.mli:
