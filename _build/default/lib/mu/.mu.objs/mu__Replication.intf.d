lib/mu/replication.mli: Bytes Replica
