lib/mu/invariants.ml: Array Bytes Fmt List Log Option Printf Rdma Replica
