lib/mu/replication.ml: Bytes Config Fmt Fun Hashtbl Int64 List Log Logs Metrics Permissions Printf Rdma Replica Sim
