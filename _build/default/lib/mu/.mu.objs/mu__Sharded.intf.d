lib/mu/sharded.mli: Config Sim Smr
