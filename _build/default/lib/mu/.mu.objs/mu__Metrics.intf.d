lib/mu/metrics.mli: Fmt
