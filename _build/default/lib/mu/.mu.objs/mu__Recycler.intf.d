lib/mu/recycler.mli: Replica
