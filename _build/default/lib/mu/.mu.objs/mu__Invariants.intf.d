lib/mu/invariants.mli: Fmt Replica
