lib/mu/replayer.mli: Replica
