lib/mu/log.mli: Bytes Fmt Rdma
