lib/mu/replica.mli: Config Hashtbl Log Metrics Rdma Sim
