lib/mu/config.ml:
