lib/mu/replayer.ml: Config Log Replica Sim
