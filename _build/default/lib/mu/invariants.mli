(** Cluster-wide safety invariants, executable forms of Appendix A.

    These are checking utilities for tests, examples and debugging — they
    read replica state directly (no communication) and report violations.
    They correspond to:

    - {b Agreement} (Theorem A.7): no two replicas hold different values
      in the same decided slot.
    - {b No holes} (Lemma A.11): every decided-but-unapplied slot is
      populated. Slots below a replica's log head may legitimately be
      empty (recycled, §5.3).
    - {b Decided implies majority} (Definition 2 / Invariant A.1): every
      entry below some replica's FUO is present at a majority of the
      replicas that still retain that index (i.e., whose log head is at or
      below it).
    - {b Single writer} (§5.2): each replica grants log write access to at
      most one remote replica.
    - {b Applied within decided}: a replica never applies past its FUO. *)

type violation = { replica : int; index : int option; message : string }

val pp_violation : violation Fmt.t

val check_all : Replica.t array -> violation list
(** Run every invariant; empty list = all hold. *)

val agreement : Replica.t array -> violation list
val no_holes : Replica.t array -> violation list
val decided_at_majority : Replica.t array -> violation list
val single_writer : Replica.t array -> violation list
val applied_within_fuo : Replica.t array -> violation list

val assert_all : Replica.t array -> unit
(** Raise [Failure] with a rendered report if any invariant is violated. *)
