(** Permission management (§5.2).

    Each replica maintains the invariant that at most one replica at a time
    has write permission on its log. A would-be leader requests write
    access by RDMA-writing its request generation into the {e permission
    request array} of every replica's background MR; each replica's
    permission management thread spins on that array, handles requests one
    by one in requester-id order, revokes the current holder, grants the
    requester (fast-slow path: QP access flags first, QP restart on error —
    Fig. 2), and acks by RDMA-writing the generation into the requester's
    {e ack array}.

    Generations make a grant valid for at most one request: a leader that
    lost permission cannot observe a stale ack as a fresh grant (Appendix
    A.1, "permission can only be granted at most once per request"). *)

val start : Replica.t -> unit
(** Spawn the permission management fiber on this replica. *)

val request_permissions : Replica.t -> int64
(** Bump this replica's request generation and broadcast it: one RDMA
    Write per peer into their request arrays, plus a local write into our
    own (a leader also directs its own permission module to fence out the
    previous holder). Returns the generation to poll acks against. Must be
    called from a fiber of the replica's host. *)

val acked : Replica.t -> gen:int64 -> int list
(** Ids (possibly including our own) whose ack slot carries [gen] — read
    from local memory, no communication. *)

val grant_self_local : Replica.t -> gen:int64 -> unit
(** Process our own request locally without waiting for the spinning
    thread (used in tests). *)

val poll_interval : int
(** Virtual ns between scans of the request array. *)
