(** Leader election via pull-score failure detection (§5.1).

    Every replica continually increments a heartbeat counter in its local
    background MR. For each peer, a monitor fiber RDMA-Reads the peer's
    counter every [fd_read_interval] and keeps a score: +1 when the counter
    advanced since the previous read, −1 otherwise, capped to
    [score_min, score_max]. A peer is declared failed when its score drops
    below [score_fail] and recovered when it rises above [score_recover]
    (hysteresis avoids oscillation).

    Because a slow network delays the {e reads} rather than the heartbeat,
    the effective timeout can be aggressive without false positives — the
    paper's key failure-detection insight.

    Leader rule: replica [i] takes [j] as leader if [j] has the lowest id
    among the replicas [i] considers alive (itself included).

    Fate sharing (§5.1, optional via {!Config.fate_sharing}): the
    heartbeat fiber stops incrementing while the replication plane is stuck
    inside a propose call, so a wedged leader gets replaced. *)

val start : Replica.t -> on_role_change:(Replica.role -> unit) -> unit
(** Spawn the heartbeat, per-peer monitor, and role-decision fibers.
    [on_role_change] fires from the role fiber whenever this replica's
    role flips. *)

val current_leader : Replica.t -> int
(** This replica's current leader estimate. *)

val is_alive : Replica.t -> int -> bool
(** Whether this replica currently believes peer [id] to be alive. *)

val read_own_heartbeat : Replica.t -> int64
