(** Log recycling (§5.3).

    The log is conceptually infinite but physically circular. Followers
    publish a {e log head} (first entry not yet executed) in their
    background MR; the leader periodically reads all heads, computes
    [minHead], and zeroes every slot below it — in follower logs via RDMA
    Writes on the replication QPs (it holds write permission) and locally —
    so recycled slots cannot present stale canaries when the log wraps.

    Only an established leader recycles: a new leader first finishes its
    catch-up/update steps, guaranteeing its FUO is at least every
    follower's (§5.3). The zeroing writes are fire-and-forget: their
    completions are consumed (and any error turned into an abort) by the
    propose path's completion loop, which shares the replication CQ. *)

val start : Replica.t -> unit
(** Spawn the recycling fiber (active only while this replica leads). *)

val recycle_once : Replica.t -> unit
(** One scan-and-zero round; exposed for tests. Must run in a fiber of the
    replica's host while it is an established leader. *)
