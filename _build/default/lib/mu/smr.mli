(** The SMR façade (Fig. 1): assembles the replication and background
    planes on every replica, captures client requests at the leader, and
    injects committed requests into every replica's application.

    Request flow on the leader: capture (attach-mode cost, §7.1) → stage
    into the RDMA buffer (memcpy, §7.4) → propose (one-sided replication,
    §4) → apply → respond. Followers replay committed entries into their
    application copies.

    Two service loops, chosen by configuration:
    - {b simple}: one propose at a time ([max_outstanding = 1],
      [max_batch = 1]) — the latency-oriented setup of Figs. 3–5;
    - {b pipelined}: up to [max_outstanding] slots in flight, each carrying
      up to [max_batch] coalesced requests — the throughput setup of
      Fig. 7.

    Delivery guarantee: entries commit in log order and are injected
    exactly once per replica. A request whose leader aborts mid-propose is
    re-submitted by the service loop, so a request may commit {e twice}
    under leader change (at-least-once); applications needing exactly-once
    must deduplicate by request id, as is standard for SMR systems. *)

(** Application attached to each replica. *)
type app = {
  apply : bytes -> bytes;  (** Execute one request, return the response. *)
  snapshot : unit -> bytes;  (** Checkpoint for state transfer (§5.4). *)
  install : bytes -> unit;  (** Restore from a checkpoint. *)
}

val stateless_app : (bytes -> bytes) -> app
(** An app with no checkpointable state (snapshot returns empty). *)

type t

val create :
  Sim.Engine.t -> Sim.Calibration.t -> Config.t -> make_app:(int -> app) -> t
(** Build a cluster of [config.n] replicas, each running [make_app id]. No
    fibers are started until {!start}. *)

val start : ?client_service:bool -> t -> unit
(** Spawn all planes on every replica: heartbeat + monitors + role fiber
    (election), permission management, replayer, recycler, and the leader
    service loop. [client_service:false] omits the service loop — for
    harnesses (e.g. the standalone latency benches, §7.1) that drive
    {!Replication.propose} themselves. *)

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val replicas : t -> Replica.t array
val replica : t -> int -> Replica.t

val leader : t -> Replica.t option
(** The replica currently acting as leader, if exactly one does. *)

val serving_leader : t -> Replica.t option
(** Like {!leader}, but ignores claimants whose host is paused or crashed
    (a failed ex-leader keeps its stale role until it runs again). *)

val submit_async : ?retry:bool -> t -> bytes -> bytes Sim.Engine.Ivar.ivar
(** Enqueue a client request; the ivar is filled with the application
    response once the request commits and executes at the leader.
    [retry] (default true) enables client-side retransmission after a
    timeout, covering requests captured by a leader that then fails;
    throughput harnesses that generate their own load can disable it. *)

val submit : t -> bytes -> bytes
(** {!submit_async} then block (must run inside a fiber). *)

val wait_live : t -> unit
(** Block until the cluster has an established leader that has committed
    at least one entry (fiber context). *)

val stop : t -> unit
(** Ask every replica's fibers to wind down. *)

(** {1 Membership (§5.4)} *)

val remove_replica : t -> id:int -> unit
(** Propose a configuration entry removing [id]. Once it commits, [id]
    stops executing and the others ignore it (fiber context). *)

val add_replica : t -> unit -> Replica.t
(** Add a fresh replica (next free id): propose the configuration entry,
    wire the newcomer, transfer an application checkpoint (taken from a
    follower, per §5.4), and start its planes (fiber context).

    Known simplification: replicas started before the newcomer joined do
    not spawn a failure-detector monitor for it. Because ids only grow,
    the newcomer is never anyone's leader candidate while unmonitored, so
    leader election is unaffected; it is fully monitored by any replica
    (re)started after the join. *)

(** {1 Batch framing} — exposed for tests. *)

val encode_batch : bytes list -> bytes
val decode_batch : bytes -> bytes list option
(** [None] when the entry is a configuration entry rather than a batch. *)
