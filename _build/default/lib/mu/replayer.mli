(** The replayer: the follower role of the replication plane (§3.1, §4.2).

    Followers are silent — they only watch their local log. The replayer
    fiber:

    - validates new entries via the canary byte before trusting them
      (§4.2 "Replayer");
    - advances the local FUO by {e commit piggybacking}: entry [i] is
      known committed once entry [i+1] exists, because the leader starts
      index [i+1] only after [i] is committed (§4.2 "Followers commit in
      background", Listing 7) — or earlier, when a new leader bumps the
      FUO directly during its update-followers step;
    - injects committed entries into the application and publishes the new
      log head for the recycler (§5.3).

    The FUO self-advance runs only while the replica is a follower; a
    leader manages its own FUO inside propose. Application of committed
    entries is shared with the leader path through
    {!Replica.apply_committed}, so an entry is never injected twice. *)

val start : Replica.t -> unit
(** Spawn the replayer fiber. *)

val self_advance_fuo : Replica.t -> bool
(** One round of Listing 7: advance the FUO over complete entries whose
    successor exists. Returns whether progress was made. Exposed for unit
    tests. *)
