package "apps" (
  directory = "apps"
  description = ""
  requires = "fmt mu.core mu.rdma mu.sim"
  archive(byte) = "apps.cma"
  archive(native) = "apps.cmxa"
  plugin(byte) = "apps.cma"
  plugin(native) = "apps.cmxs"
)
package "baselines" (
  directory = "baselines"
  description = ""
  requires = "fmt mu.rdma mu.sim"
  archive(byte) = "baselines.cma"
  archive(native) = "baselines.cmxa"
  plugin(byte) = "baselines.cma"
  plugin(native) = "baselines.cmxs"
)
package "core" (
  directory = "core"
  description = ""
  requires = "fmt logs mu.rdma mu.sim"
  archive(byte) = "mu.cma"
  archive(native) = "mu.cmxa"
  plugin(byte) = "mu.cma"
  plugin(native) = "mu.cmxs"
)
package "rdma" (
  directory = "rdma"
  description = ""
  requires = "fmt logs mu.sim"
  archive(byte) = "rdma.cma"
  archive(native) = "rdma.cmxa"
  plugin(byte) = "rdma.cma"
  plugin(native) = "rdma.cmxs"
)
package "sim" (
  directory = "sim"
  description = ""
  requires = "fmt logs"
  archive(byte) = "sim.cma"
  archive(native) = "sim.cmxa"
  plugin(byte) = "sim.cma"
  plugin(native) = "sim.cmxs"
)
package "workload" (
  directory = "workload"
  description = ""
  requires = "fmt mu.apps mu.baselines mu.core mu.rdma mu.sim"
  archive(byte) = "workload.cma"
  archive(native) = "workload.cmxa"
  plugin(byte) = "workload.cma"
  plugin(native) = "workload.cmxs"
)