(* Reconfiguring the group at runtime (§5.4): grow a 3-replica KV cluster
   to 4, then retire the original leader, with the service answering
   throughout.

   Run with: dune exec examples/membership.exe *)

let () =
  let engine = Sim.Engine.create ~seed:17L () in
  let smr =
    Mu.Smr.create engine Sim.Calibration.default Mu.Config.default ~make_app:(fun _ ->
        Apps.Kv_store.smr_app ())
  in
  Mu.Smr.start smr;
  let ms () = float_of_int (Sim.Engine.now engine) /. 1.0e6 in

  Sim.Engine.spawn engine ~name:"operator" (fun () ->
      Mu.Smr.wait_live smr;
      let req = ref 0 in
      let put k v =
        incr req;
        ignore
          (Mu.Smr.submit smr
             (Apps.Kv_store.encode_command ~client:1 ~req_id:!req
                (Apps.Kv_store.Put { key = k; value = v })))
      in
      let get k =
        incr req;
        match
          Apps.Kv_store.decode_reply
            (Mu.Smr.submit smr
               (Apps.Kv_store.encode_command ~client:1 ~req_id:!req
                  (Apps.Kv_store.Get { key = k })))
        with
        | Some (Apps.Kv_store.Value v) -> v
        | _ -> "<miss>"
      in

      for i = 1 to 20 do
        put (Printf.sprintf "key%d" i) (Printf.sprintf "v%d" i)
      done;
      Fmt.pr "[%6.2f ms] 3-replica cluster serving; 20 keys stored@." (ms ());

      (* Scale out: replica 3 joins via a configuration entry and a
         checkpoint taken from a follower (§5.4). *)
      let newcomer = Mu.Smr.add_replica smr () in
      Fmt.pr "[%6.2f ms] replica %d joined (checkpoint + log position %d)@." (ms ())
        newcomer.Mu.Replica.id newcomer.Mu.Replica.applied;
      put "after-join" "ok";
      put "after-join-2" "ok";
      Sim.Engine.sleep engine 2_000_000;
      Fmt.pr "[%6.2f ms] newcomer has applied %d entries@." (ms ())
        newcomer.Mu.Replica.applied;

      (* Scale back in: retire replica 2. *)
      Mu.Smr.remove_replica smr ~id:2;
      Fmt.pr "[%6.2f ms] replica 2 removed; group is {0, 1, 3}@." (ms ());
      put "after-remove" "ok";
      Fmt.pr "[%6.2f ms] get key7=%s after-join=%s after-remove=%s@." (ms ()) (get "key7")
        (get "after-join") (get "after-remove");

      (* The enlarged group still tolerates a leader failure. *)
      (match Mu.Smr.leader smr with
      | Some l ->
        Fmt.pr "[%6.2f ms] pausing leader (replica %d)@." (ms ()) l.Mu.Replica.id;
        Sim.Host.pause l.Mu.Replica.host;
        put "during-failover" "ok";
        Fmt.pr "[%6.2f ms] request served by the reconfigured group: %s@." (ms ())
          (get "during-failover");
        Sim.Host.resume l.Mu.Replica.host
      | None -> ());

      Sim.Engine.sleep engine 3_000_000;
      let violations = Mu.Invariants.check_all (Mu.Smr.replicas smr) in
      Fmt.pr "[%6.2f ms] safety invariants: %s@." (ms ())
        (if violations = [] then "all hold"
         else Fmt.str "%a" (Fmt.list Mu.Invariants.pp_violation) violations);
      Mu.Smr.stop smr;
      Sim.Engine.halt engine);

  Sim.Engine.run ~until:300_000_000_000 engine
