(* A replicated lock service (Chubby-style) on Mu: three clients contend
   for a lock with FIFO hand-off and fencing tokens, across a leader
   failure — the microservice-coordination use case the paper's
   introduction motivates.

   Run with: dune exec examples/lock_service.exe *)

let () =
  let engine = Sim.Engine.create ~seed:31L () in
  let smr =
    Mu.Smr.create engine Sim.Calibration.default Mu.Config.default ~make_app:(fun _ ->
        Apps.Lock_service.smr_app ())
  in
  Mu.Smr.start smr;

  let ms () = float_of_int (Sim.Engine.now engine) /. 1.0e6 in
  let finished = ref 0 in
  let n_clients = 3 in

  for client = 1 to n_clients do
    Sim.Engine.spawn engine ~name:(Printf.sprintf "client%d" client) (fun () ->
        Mu.Smr.wait_live smr;
        let req = ref 0 in
        let call cmd =
          incr req;
          Apps.Lock_service.decode_reply
            (Mu.Smr.submit smr (Apps.Lock_service.encode_command ~client ~req_id:!req cmd))
        in
        (* Stagger arrivals so the queue order is interesting. *)
        Sim.Engine.sleep engine (client * 50_000);
        (match call (Apps.Lock_service.Acquire { client; lock = "shard-7" }) with
        | Some (Apps.Lock_service.Granted { fence }) ->
          Fmt.pr "[%6.2f ms] client %d GRANTED shard-7 (fence %d)@." (ms ()) client fence
        | Some (Apps.Lock_service.Queued { position }) ->
          Fmt.pr "[%6.2f ms] client %d queued at position %d@." (ms ()) client position
        | _ -> Fmt.pr "client %d: unexpected reply@." client);
        (* Wait until we hold it (poll the replicated state). *)
        let rec await_ownership () =
          match call (Apps.Lock_service.Holder { lock = "shard-7" }) with
          | Some (Apps.Lock_service.Held_by { client = c; fence }) when c = client -> fence
          | _ ->
            Sim.Engine.sleep engine 300_000;
            await_ownership ()
        in
        let fence = await_ownership () in
        (* Critical section: pretend to own shard 7 for a while. *)
        Fmt.pr "[%6.2f ms] client %d enters the critical section (fence %d)@." (ms ()) client
          fence;
        Sim.Engine.sleep engine 1_000_000;
        (match call (Apps.Lock_service.Release { client; lock = "shard-7" }) with
        | Some Apps.Lock_service.Released ->
          Fmt.pr "[%6.2f ms] client %d released shard-7@." (ms ()) client
        | _ -> Fmt.pr "client %d: release failed@." client);
        incr finished;
        if !finished = n_clients then begin
          Mu.Smr.stop smr;
          Sim.Engine.halt engine
        end)
  done;

  (* Chaos: take the SMR leader down while client 1 is inside its critical
     section; the lock, its queue, and the fencing tokens all survive. *)
  Sim.Engine.spawn engine ~name:"chaos" (fun () ->
      Sim.Engine.sleep engine 800_000;
      match Mu.Smr.leader smr with
      | Some leader ->
        Fmt.pr "[%6.2f ms] !! pausing SMR leader (replica %d)@." (ms ()) leader.Mu.Replica.id;
        Sim.Host.pause leader.Mu.Replica.host;
        Sim.Engine.sleep engine 4_000_000;
        Sim.Host.resume leader.Mu.Replica.host;
        Fmt.pr "[%6.2f ms] !! replica %d resumed@." (ms ()) leader.Mu.Replica.id
      | None -> ());

  Sim.Engine.run ~until:300_000_000_000 engine;
  Fmt.pr "done: %d/%d clients completed their lock cycle@." !finished n_clients
