(* A replicated financial exchange — the paper's flagship scenario (§1, §7):
   a Liquibook-style matching engine replicated with Mu, trading through a
   leader failure without losing the book.

   Run with: dune exec examples/financial_exchange.exe *)

let pp_depth book_side label depth =
  Fmt.pr "    %s: %a@." label
    Fmt.(list ~sep:(Fmt.any ", ") (fun ppf (p, q) -> Fmt.pf ppf "%d@@%d" q p))
    depth;
  ignore book_side

let () =
  let engine = Sim.Engine.create ~seed:99L () in
  let calibration = Sim.Calibration.default in
  (* Liquibook-style integration: the matching engine attaches in direct
     mode (it shares the replication thread, §7.1). *)
  let config = { Mu.Config.default with Mu.Config.attach = Mu.Config.Direct } in
  (* Keep a handle on replica 1's book so we can inspect the replica state
     after fail-over. *)
  let books = Hashtbl.create 3 in
  let make_app id =
    let book = ref (Apps.Order_book.create ()) in
    Hashtbl.replace books id book;
    {
      Mu.Smr.apply =
        (fun payload ->
          match Apps.Exchange.decode_command payload with
          | Some cmd -> Apps.Exchange.encode_events (Apps.Exchange.apply !book cmd)
          | None -> Bytes.empty);
      snapshot = (fun () -> Apps.Order_book.snapshot !book);
      install = (fun data -> book := Apps.Order_book.restore data);
    }
  in
  let smr = Mu.Smr.create engine calibration config ~make_app in
  Mu.Smr.start smr;

  Sim.Engine.spawn engine ~name:"trading-client" (fun () ->
      Mu.Smr.wait_live smr;
      let transport =
        Apps.Transport.create Apps.Transport.Erpc calibration
          (Sim.Rng.split (Sim.Engine.rng engine))
      in
      let lat = Sim.Stats.Samples.create () in
      let submit cmd =
        (* eRPC client legs around the replicated matching engine. *)
        let rtt = Apps.Transport.rtt_sample transport in
        let t0 = Sim.Engine.now engine in
        Sim.Engine.sleep engine (Apps.Transport.request_leg transport rtt);
        let reply = Mu.Smr.submit smr (Apps.Exchange.encode_command cmd) in
        Sim.Engine.sleep engine (Apps.Transport.response_leg transport rtt);
        Sim.Stats.Samples.add lat (Sim.Engine.now engine - t0);
        Apps.Exchange.decode_events reply
      in

      (* Build a book. *)
      let flow = Workload.Generators.order_flow (Sim.Rng.split (Sim.Engine.rng engine)) in
      let fills = ref 0 in
      for _ = 1 to 400 do
        List.iter
          (function Apps.Order_book.Filled _ -> incr fills | _ -> ())
          (submit (Workload.Generators.next_order flow))
      done;
      Fmt.pr "after 400 orders: %d fills; client latency %a@." !fills
        Sim.Stats.Samples.pp_us lat;
      let leader = Option.get (Mu.Smr.leader smr) in
      let book = !(Hashtbl.find books leader.Mu.Replica.id) in
      pp_depth Apps.Order_book.Buy "bids" (Apps.Order_book.depth book Apps.Order_book.Buy ~levels:3);
      pp_depth Apps.Order_book.Sell "asks" (Apps.Order_book.depth book Apps.Order_book.Sell ~levels:3);

      (* Exchange outage drill: the primary matching engine host dies
         mid-session. Mu fails over in under a millisecond and the order
         book — resting orders included — survives on the replicas. *)
      Fmt.pr "@.killing the primary (replica %d) mid-session...@." leader.Mu.Replica.id;
      Sim.Host.stop_process leader.Mu.Replica.host;
      let t_fail = Sim.Engine.now engine in
      let fills2 = ref 0 in
      for _ = 1 to 200 do
        List.iter
          (function Apps.Order_book.Filled _ -> incr fills2 | _ -> ())
          (submit (Workload.Generators.next_order flow))
      done;
      let survivor = Option.get (Mu.Smr.serving_leader smr) in
      Fmt.pr "trading resumed on replica %d %.0f us after the crash; %d more fills@."
        survivor.Mu.Replica.id
        (Sim.Stats.ns_to_us (Sim.Engine.now engine - t_fail))
        !fills2;
      let book' = !(Hashtbl.find books survivor.Mu.Replica.id) in
      Fmt.pr "book state on the new primary (%d resting orders, %d trades total):@."
        (Apps.Order_book.open_order_count book')
        (Apps.Order_book.trades_executed book');
      pp_depth Apps.Order_book.Buy "bids" (Apps.Order_book.depth book' Apps.Order_book.Buy ~levels:3);
      pp_depth Apps.Order_book.Sell "asks" (Apps.Order_book.depth book' Apps.Order_book.Sell ~levels:3);

      Mu.Smr.stop smr;
      Sim.Engine.halt engine);

  Sim.Engine.run engine
