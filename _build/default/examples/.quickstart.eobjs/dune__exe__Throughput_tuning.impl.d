examples/throughput_tuning.ml: Fmt List Sim Workload
