examples/quickstart.ml: Apps Fmt Mu Option Sim
