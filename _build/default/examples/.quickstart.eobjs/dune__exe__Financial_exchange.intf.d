examples/financial_exchange.mli:
