examples/throughput_tuning.mli:
