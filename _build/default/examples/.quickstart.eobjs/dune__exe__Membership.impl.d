examples/membership.ml: Apps Fmt Mu Printf Sim
