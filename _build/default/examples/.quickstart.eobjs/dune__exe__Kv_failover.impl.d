examples/kv_failover.ml: Apps Fmt Int64 List Mu Printf Sim Workload
