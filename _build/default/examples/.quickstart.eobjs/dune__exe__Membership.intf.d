examples/membership.mli:
