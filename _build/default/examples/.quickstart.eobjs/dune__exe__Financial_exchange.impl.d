examples/financial_exchange.ml: Apps Bytes Fmt Hashtbl List Mu Option Sim Workload
