examples/lock_service.ml: Apps Fmt Mu Printf Sim
