examples/kv_failover.mli:
