examples/quickstart.mli:
