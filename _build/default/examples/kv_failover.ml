(* A replicated key-value store surviving repeated leader failures, with a
   client-observed linearizability check at the end — exercising the
   paper's safety claim (§1) end to end.

   Run with: dune exec examples/kv_failover.exe *)

let () =
  let engine = Sim.Engine.create ~seed:7L () in
  let smr =
    Mu.Smr.create engine Sim.Calibration.default Mu.Config.default ~make_app:(fun _ ->
        Apps.Kv_store.smr_app ())
  in
  Mu.Smr.start smr;
  let history = ref [] in
  let clients = 3 and rounds = 3 and ops_per_round = 15 in
  let done_count = ref 0 in

  (* A chaos fiber: pause the current leader once per round, let the
     cluster fail over, then bring it back. *)
  Sim.Engine.spawn engine ~name:"chaos" (fun () ->
      Mu.Smr.wait_live smr;
      for round = 1 to rounds do
        Sim.Engine.sleep engine 3_000_000;
        match Mu.Smr.leader smr with
        | Some leader ->
          Fmt.pr "[%.1f ms] chaos round %d: pausing leader %d@."
            (float_of_int (Sim.Engine.now engine) /. 1e6)
            round leader.Mu.Replica.id;
          Sim.Host.pause leader.Mu.Replica.host;
          Sim.Engine.sleep engine 4_000_000;
          Sim.Host.resume leader.Mu.Replica.host;
          Fmt.pr "[%.1f ms] leader %d resumed@."
            (float_of_int (Sim.Engine.now engine) /. 1e6)
            leader.Mu.Replica.id
        | None -> ()
      done);

  for proc = 1 to clients do
    Sim.Engine.spawn engine ~name:(Printf.sprintf "client%d" proc) (fun () ->
        Mu.Smr.wait_live smr;
        let rng = Sim.Rng.create (Int64.of_int (proc * 31)) in
        for i = 1 to rounds * ops_per_round do
          Sim.Engine.sleep engine (100_000 + Sim.Rng.int rng 400_000);
          let key = Printf.sprintf "k%d" (Sim.Rng.int rng 4) in
          let req_id = (proc * 10_000) + i in
          let invoked = Sim.Engine.now engine in
          if Sim.Rng.bool rng then begin
            let value = Printf.sprintf "c%d-%d" proc i in
            ignore
              (Mu.Smr.submit smr
                 (Apps.Kv_store.encode_command ~client:proc ~req_id
                    (Apps.Kv_store.Put { key; value })));
            history :=
              {
                Workload.Linearizability.proc;
                invoked;
                responded = Sim.Engine.now engine;
                key;
                kind = Workload.Linearizability.Write value;
              }
              :: !history
          end
          else begin
            let reply =
              Mu.Smr.submit smr
                (Apps.Kv_store.encode_command ~client:proc ~req_id
                   (Apps.Kv_store.Get { key }))
            in
            let observed =
              match Apps.Kv_store.decode_reply reply with
              | Some (Apps.Kv_store.Value v) -> Some v
              | _ -> None
            in
            history :=
              {
                Workload.Linearizability.proc;
                invoked;
                responded = Sim.Engine.now engine;
                key;
                kind = Workload.Linearizability.Read observed;
              }
              :: !history
          end
        done;
        incr done_count;
        if !done_count = clients then begin
          Mu.Smr.stop smr;
          Sim.Engine.halt engine
        end)
  done;

  Sim.Engine.run ~until:300_000_000_000 engine;
  let ops = !history in
  Fmt.pr "@.%d operations from %d clients across %d forced fail-overs@." (List.length ops)
    clients rounds;
  let reads = List.length (List.filter (fun o -> match o.Workload.Linearizability.kind with Workload.Linearizability.Read _ -> true | _ -> false) ops) in
  Fmt.pr "  %d writes, %d reads@." (List.length ops - reads) reads;
  if Workload.Linearizability.check ops then
    Fmt.pr "  history is LINEARIZABLE — strong consistency held through failures@."
  else begin
    Fmt.pr "  history is NOT linearizable — consistency violation!@.";
    exit 1
  end
