(* Tuning Mu's throughput with batching and pipelining, as in §7.4: sweep
   a few (outstanding, batch) points and print the latency/throughput
   trade-off the paper's Fig. 7 plots.

   Run with: dune exec examples/throughput_tuning.exe *)

let () =
  let setup = Workload.Experiments.default_setup in
  Fmt.pr "Mu throughput tuning (64 B requests, 3 replicas)@.";
  Fmt.pr "%12s %8s %12s %14s@." "outstanding" "batch" "ops/us" "median (us)";
  List.iter
    (fun (outstanding, batch) ->
      let p =
        Workload.Experiments.throughput_point setup ~requests:15_000 ~batch ~outstanding
      in
      Fmt.pr "%12d %8d %12.2f %14.2f@." outstanding batch
        p.Workload.Experiments.ops_per_us
        (Sim.Stats.ns_to_us p.Workload.Experiments.median_latency_ns))
    [ (1, 1); (2, 1); (2, 32); (4, 16); (8, 64); (8, 128) ];
  Fmt.pr
    "@.Reading the table: one outstanding unbatched request gives the Fig. 4@.\
     latency (~1.3 us) at modest throughput; two outstanding requests roughly@.\
     double throughput at negligible latency cost; large batches ride the@.\
     leader's staging-memcpy wall (~45-50 ops/us) at tens of microseconds of@.\
     latency — the shape of the paper's Fig. 7.@."
