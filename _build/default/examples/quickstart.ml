(* Quickstart: replicate a key-value store across three simulated hosts
   with Mu, submit a few requests, and watch a fail-over.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A deterministic simulated world. *)
  let engine = Sim.Engine.create ~seed:2024L () in
  let calibration = Sim.Calibration.default in

  (* 2. A 3-replica Mu deployment running a replicated KV store. *)
  let config = Mu.Config.default in
  let smr =
    Mu.Smr.create engine calibration config ~make_app:(fun _id -> Apps.Kv_store.smr_app ())
  in
  Mu.Smr.start smr;

  (* 3. A client: submit requests, then inject a leader failure. *)
  Sim.Engine.spawn engine ~name:"client" (fun () ->
      Mu.Smr.wait_live smr;
      Fmt.pr "cluster live at t=%.1f us; leader is replica %d@."
        (Sim.Stats.ns_to_us (Sim.Engine.now engine))
        (match Mu.Smr.leader smr with Some r -> r.Mu.Replica.id | None -> -1);

      let put i key value =
        let cmd =
          Apps.Kv_store.encode_command ~client:1 ~req_id:i
            (Apps.Kv_store.Put { key; value })
        in
        let t0 = Sim.Engine.now engine in
        ignore (Mu.Smr.submit smr cmd);
        Fmt.pr "  put %s=%s committed in %.2f us@." key value
          (Sim.Stats.ns_to_us (Sim.Engine.now engine - t0))
      in
      let get i key =
        let cmd =
          Apps.Kv_store.encode_command ~client:1 ~req_id:i (Apps.Kv_store.Get { key })
        in
        match Apps.Kv_store.decode_reply (Mu.Smr.submit smr cmd) with
        | Some (Apps.Kv_store.Value v) -> Some v
        | _ -> None
      in

      put 1 "city" "Lausanne";
      put 2 "paper" "Mu";
      Fmt.pr "  get city -> %s@." (Option.value (get 3 "city") ~default:"<miss>");

      (* Fail the leader: detection (~600 us) + permission switch (~250 us)
         later, the next-lowest id serves; our request retransmits. *)
      let old_leader = Option.get (Mu.Smr.leader smr) in
      Fmt.pr "pausing leader (replica %d) at t=%.1f us...@." old_leader.Mu.Replica.id
        (Sim.Stats.ns_to_us (Sim.Engine.now engine));
      Sim.Host.pause old_leader.Mu.Replica.host;

      put 4 "status" "failed-over";
      (* The paused replica still believes it leads, so we report the
         replica that is actually serving. *)
      let serving = Option.get (Mu.Smr.serving_leader smr) in
      Fmt.pr "new leader: replica %d at t=%.1f us@." serving.Mu.Replica.id
        (Sim.Stats.ns_to_us (Sim.Engine.now engine));
      Fmt.pr "  get status -> %s@." (Option.value (get 5 "status") ~default:"<miss>");

      (* The old leader comes back and, having the lowest id, reclaims. *)
      Sim.Host.resume old_leader.Mu.Replica.host;
      Sim.Engine.sleep engine 3_000_000;
      ignore (get 6 "city");
      Fmt.pr "after recovery the leader is replica %d again@."
        (match Mu.Smr.leader smr with Some r -> r.Mu.Replica.id | None -> -1);

      Mu.Smr.stop smr;
      Sim.Engine.halt engine);

  Sim.Engine.run engine;
  Fmt.pr "simulation finished at t=%.1f us@." (Sim.Stats.ns_to_us (Sim.Engine.now engine))
