(* mu_demo — a command-line front end for the Mu reproduction.

   Subcommands run individual experiments with tunable parameters:

     mu_demo latency    --payload 64 --samples 50000 --attach standalone
     mu_demo compare    --samples 20000
     mu_demo failover   --rounds 200
     mu_demo throughput --batch 32 --outstanding 2 --requests 30000
     mu_demo detectors
     mu_demo profile    --mode failover --folded out.folded --speedscope out.json
     mu_demo report     --samples 20000 --rounds 50
     mu_demo report     --results BENCH_results.json

   All experiments are deterministic given --seed. *)

open Cmdliner

let setup_of ?trace ?metrics ?faults ?(provenance = false) ?on_engine seed =
  { Workload.Experiments.seed = Int64.of_int seed; cal = Sim.Calibration.default; trace;
    metrics; faults; provenance; on_engine }

(* --- fault scenarios ------------------------------------------------------ *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A scenario argument is either one of the named scenarios (which depend
   on the cluster size, hence the [~n] at resolution time) or a JSON file
   produced by hand or by a failing sweep's repro. *)
let resolve_scenario ~n spec =
  match Faults.Scenario.by_name spec ~n with
  | Some sc -> Ok sc
  | None ->
    if Sys.file_exists spec then
      Result.map_error
        (fun msg -> Printf.sprintf "%s: %s" spec msg)
        (Faults.Scenario.of_string (read_file spec))
    else
      Error
        (Printf.sprintf "unknown scenario %S (named: %s, or a JSON file)" spec
           (String.concat ", " Faults.Scenario.named))

let scenario_or_die ~n spec =
  match resolve_scenario ~n spec with
  | Ok sc -> (
    match Faults.Scenario.validate ~n sc with
    | Ok () -> sc
    | Error msg ->
      Fmt.epr "invalid scenario for n=%d: %s@." n msg;
      exit 2)
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 2

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SCENARIO"
        ~doc:
          "Inject a fault scenario into the experiment's Mu cluster: a named scenario \
           (crash-leader, partition-leader, lossy-fabric, kill-restart) or a scenario \
           JSON file.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed for the simulation.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export telemetry to $(docv) (.json with time-series, .csv, or .prom/.txt \
           Prometheus text).")

let metrics_interval_arg =
  Arg.(
    value
    & opt int 50_000
    & info [ "metrics-interval" ] ~docv:"NS"
        ~doc:"Virtual-time sampling interval for metric time-series.")

let make_sampler metrics_file interval =
  Option.map
    (fun _ -> Telemetry.Sampler.create (Telemetry.Registry.create ()) ~interval)
    metrics_file

let export_metrics sampler metrics_file =
  match sampler, metrics_file with
  | Some smp, Some file ->
    Telemetry.Export.to_file ~sampler:smp (Telemetry.Sampler.registry smp) file;
    Fmt.pr "Metrics written to %s@." file
  | _ -> ()

(* -v / -vv install a Logs reporter so the protocol's role changes,
   permission grants and aborts become visible. *)
let setup_logs =
  let setup verbosity =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (match verbosity with 0 -> None | 1 -> Some Logs.Info | _ -> Some Logs.Debug)
  in
  Term.(
    const setup
    $ Arg.(value & opt int 0 & info [ "v"; "verbosity" ] ~docv:"N" ~doc:"0 quiet, 1 info, 2 debug."))

let samples_arg default =
  Arg.(value & opt int default & info [ "samples" ] ~docv:"N" ~doc:"Number of measured requests.")

let pp_result name s = Fmt.pr "%-28s %a@." name Sim.Stats.Samples.pp_us s

(* --- latency ------------------------------------------------------------- *)

let attach_conv =
  let parse = function
    | "standalone" -> Ok Mu.Config.Standalone
    | "direct" -> Ok Mu.Config.Direct
    | "handover" -> Ok Mu.Config.Handover
    | s -> Error (`Msg (Printf.sprintf "unknown attach mode %S" s))
  in
  let print ppf = function
    | Mu.Config.Standalone -> Fmt.string ppf "standalone"
    | Mu.Config.Direct -> Fmt.string ppf "direct"
    | Mu.Config.Handover -> Fmt.string ppf "handover"
  in
  Arg.conv (parse, print)

let latency_cmd =
  let run seed samples payload attach metrics_file interval faults_spec =
    let sampler = make_sampler metrics_file interval in
    let faults =
      Option.map (scenario_or_die ~n:Mu.Config.default.Mu.Config.n) faults_spec
    in
    let s =
      Workload.Experiments.mu_replication_latency
        (setup_of ?metrics:sampler ?faults seed)
        ~samples ~payload ~attach
    in
    pp_result (Printf.sprintf "Mu %dB" payload) s;
    export_metrics sampler metrics_file
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Request payload size.")
  in
  let attach =
    Arg.(
      value
      & opt attach_conv Mu.Config.Standalone
      & info [ "attach" ] ~docv:"MODE" ~doc:"Attach mode: standalone, direct or handover.")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Measure Mu's replication latency (paper Fig. 3).")
    Term.(
      const (fun () -> run) $ setup_logs $ seed_arg $ samples_arg 50_000 $ payload $ attach
      $ metrics_arg $ metrics_interval_arg $ faults_arg)

(* --- compare -------------------------------------------------------------- *)

let compare_cmd =
  let run seed samples =
    let setup = setup_of seed in
    pp_result "Mu"
      (Workload.Experiments.mu_replication_latency setup ~samples ~payload:64
         ~attach:Mu.Config.Standalone);
    List.iter
      (fun (name, system) ->
        pp_result name
          (Workload.Experiments.baseline_replication_latency setup ~samples ~system
             ~payload:64))
      [ ("Hermes", `Hermes); ("DARE", `Dare); ("APUS", `Apus); ("HovercRaft", `Hovercraft) ]
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare Mu against DARE, APUS, Hermes, HovercRaft (Fig. 4).")
    Term.(const run $ seed_arg $ samples_arg 20_000)

(* --- failover -------------------------------------------------------------- *)

let failover_cmd =
  let run seed rounds trace_file metrics_file interval faults_spec =
    let tracer = Option.map (fun _ -> Trace.Tracer.create ()) trace_file in
    let sampler = make_sampler metrics_file interval in
    let faults =
      Option.map (scenario_or_die ~n:Mu.Config.default.Mu.Config.n) faults_spec
    in
    let r =
      Workload.Experiments.failover
        (setup_of ?trace:tracer ?metrics:sampler ?faults seed)
        ~rounds
    in
    pp_result "total fail-over" r.Workload.Experiments.total;
    pp_result "  detection" r.Workload.Experiments.detection;
    pp_result "  permission switch" r.Workload.Experiments.switch;
    export_metrics sampler metrics_file;
    (match sampler with
    | Some smp ->
      Fmt.pr "%s" (Telemetry.Dashboard.score_timeline smp)
    | None -> ());
    let rng = Sim.Rng.create (Int64.of_int seed) in
    Fmt.pr "prior systems (modelled): HovercRaft %.1f ms, DARE %.1f ms, Hermes %.1f ms@."
      (Baselines.Failover_model.sample_us Baselines.Failover_model.hovercraft rng /. 1000.0)
      (Baselines.Failover_model.sample_us Baselines.Failover_model.dare rng /. 1000.0)
      (Baselines.Failover_model.sample_us Baselines.Failover_model.hermes rng /. 1000.0);
    match tracer, trace_file with
    | Some tr, Some file ->
      Trace.Tracer.write_chrome tr file;
      Fmt.pr "@.%aChrome trace written to %s (open in ui.perfetto.dev)@."
        Trace.Tracer.pp_summary tr file
    | _ -> ()
  in
  let rounds =
    Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc:"Leader failures to inject.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record a Chrome trace-event JSON of the run to $(docv).")
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"Measure fail-over time across repeated leader failures (Fig. 6).")
    Term.(
      const (fun () -> run) $ setup_logs $ seed_arg $ rounds $ trace $ metrics_arg
      $ metrics_interval_arg $ faults_arg)

(* --- metrics ------------------------------------------------------------------ *)

let metrics_cmd =
  let run seed =
    (* A short mixed workload (traffic + one fail-over), then the per-plane
       counters each replica accumulated. *)
    let e = Sim.Engine.create ~seed:(Int64.of_int seed) () in
    let smr =
      Mu.Smr.create e Sim.Calibration.default Mu.Config.default ~make_app:(fun _ ->
          Mu.Smr.stateless_app Fun.id)
    in
    Mu.Smr.start smr;
    Sim.Engine.spawn e ~name:"driver" (fun () ->
        Mu.Smr.wait_live smr;
        for _ = 1 to 200 do
          ignore (Mu.Smr.submit smr (Bytes.make 64 'm'))
        done;
        let r0 = Mu.Smr.replica smr 0 in
        let before_failover =
          Array.to_list (Mu.Smr.replicas smr)
          |> List.map (fun (r : Mu.Replica.t) -> Mu.Metrics.copy r.Mu.Replica.metrics)
        in
        Sim.Host.pause r0.Mu.Replica.host;
        ignore (Mu.Smr.submit smr (Bytes.make 64 'f'));
        let after_failover =
          Array.to_list (Mu.Smr.replicas smr)
          |> List.map (fun (r : Mu.Replica.t) -> Mu.Metrics.copy r.Mu.Replica.metrics)
        in
        Fmt.pr "fail-over:  %a@." Mu.Metrics.pp
          (Mu.Metrics.total (List.map2 Mu.Metrics.diff after_failover before_failover));
        Sim.Host.resume r0.Mu.Replica.host;
        Sim.Engine.sleep e 5_000_000;
        for _ = 1 to 200 do
          ignore (Mu.Smr.submit smr (Bytes.make 64 'm'))
        done;
        Sim.Engine.sleep e 2_000_000;
        Array.iter
          (fun (r : Mu.Replica.t) ->
            Fmt.pr "replica %d: %a@." r.Mu.Replica.id Mu.Metrics.pp r.Mu.Replica.metrics)
          (Mu.Smr.replicas smr);
        Fmt.pr "cluster:   %a@." Mu.Metrics.pp
          (Mu.Metrics.total
             (Array.to_list (Mu.Smr.replicas smr)
             |> List.map (fun (r : Mu.Replica.t) -> r.Mu.Replica.metrics)));
        (match Mu.Invariants.check_all (Mu.Smr.replicas smr) with
        | [] -> Fmt.pr "invariants: all hold@."
        | vs -> Fmt.pr "invariants: %a@." (Fmt.list Mu.Invariants.pp_violation) vs);
        Mu.Smr.stop smr;
        Sim.Engine.halt e);
    Sim.Engine.run e
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run a mixed workload with one fail-over and print per-replica counters.")
    Term.(const run $ seed_arg)

(* --- throughput ------------------------------------------------------------- *)

let throughput_cmd =
  let run seed requests batch outstanding =
    let p =
      Workload.Experiments.throughput_point (setup_of seed) ~requests ~batch ~outstanding
    in
    Fmt.pr "batch=%d outstanding=%d: %.2f ops/us, median %.2f us, p99 %.2f us@." batch
      outstanding p.Workload.Experiments.ops_per_us
      (Sim.Stats.ns_to_us p.Workload.Experiments.median_latency_ns)
      (Sim.Stats.ns_to_us p.Workload.Experiments.p99_latency_ns)
  in
  let requests =
    Arg.(value & opt int 30_000 & info [ "requests" ] ~docv:"N" ~doc:"Requests to commit.")
  in
  let batch =
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Requests coalesced per entry.")
  in
  let outstanding =
    Arg.(value & opt int 1 & info [ "outstanding" ] ~docv:"N" ~doc:"Concurrent slots in flight.")
  in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Measure one latency/throughput point (Fig. 7).")
    Term.(const run $ seed_arg $ requests $ batch $ outstanding)

(* --- detectors --------------------------------------------------------------- *)

let detectors_cmd =
  let run seed =
    let rows = Workload.Experiments.ablation_failure_detector (setup_of seed) in
    Fmt.pr "%-34s %14s %16s@." "detector" "detection (us)" "false positives";
    List.iter
      (fun r ->
        Fmt.pr "%-34s %14.0f %10d in %.0fs@." r.Workload.Experiments.detector
          r.Workload.Experiments.detection_us r.Workload.Experiments.false_positives
          r.Workload.Experiments.observation_s)
      rows
  in
  Cmd.v
    (Cmd.info "detectors"
       ~doc:"Compare pull-score failure detection against push heartbeats (§5.1).")
    Term.(const run $ seed_arg)

(* --- chaos -------------------------------------------------------------------- *)

let chaos_cmd =
  let write_file file s =
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc
  in
  let finish ~repro_file failures =
    match failures with
    | [] ->
      Fmt.pr "all runs passed (invariants + linearizability)@.";
      0
    | worst :: _ ->
      (match repro_file with
      | Some file ->
        write_file file (Workload.Chaos.repro_json worst);
        Fmt.pr "minimized repro written to %s@." file
      | None ->
        Fmt.pr "minimized repro: %s@." (Workload.Chaos.repro_json worst));
      1
  in
  let run () seed n scenario_spec sweep replay repro_file trace_file =
    (* --trace applies to the single-scenario and --replay modes (one
       engine per run); a sweep spans many engines and ignores it. *)
    let tracer = Option.map (fun _ -> Trace.Tracer.create ()) trace_file in
    let code =
      match replay, sweep with
      | Some file, _ ->
        (* Replay a failing run from its minimized repro: same seed, same
           scenario, byte-identical execution. *)
        (match Workload.Chaos.parse_repro (read_file file) with
        | Error msg ->
          Fmt.epr "%s@." msg;
          2
        | Ok (seed, n, scenario) ->
          let o = Workload.Chaos.run ?trace:tracer ~seed ~n scenario in
          Fmt.pr "%a@." Workload.Chaos.pp_outcome o;
          finish ~repro_file (if Workload.Chaos.passed o then [] else [ o ]))
      | None, Some count ->
        let result =
          Workload.Chaos.sweep ~count ~ns:[ 3; 5 ] ~seed:(Int64.of_int seed)
            ~log:(fun i o -> Fmt.pr "[%3d/%d] %a@." (i + 1) count Workload.Chaos.pp_outcome o)
            ()
        in
        Fmt.pr "%d/%d runs passed@."
          (result.Workload.Chaos.runs - List.length result.Workload.Chaos.failures)
          result.Workload.Chaos.runs;
        (* Coverage of the generated fault mix — every action kind listed,
           zeros included, so a silently-dead generator branch is visible. *)
        Fmt.pr "%a@." Faults.Scenario.pp_coverage result.Workload.Chaos.coverage;
        finish ~repro_file result.Workload.Chaos.failures
      | None, None ->
        let scenario = scenario_or_die ~n scenario_spec in
        let o = Workload.Chaos.run ?trace:tracer ~seed:(Int64.of_int seed) ~n scenario in
        Fmt.pr "%a@." Workload.Chaos.pp_outcome o;
        finish ~repro_file (if Workload.Chaos.passed o then [] else [ o ])
    in
    (match tracer, trace_file with
    | Some tr, Some file ->
      Trace.Tracer.write_chrome tr file;
      Fmt.pr "Chrome trace written to %s (open in ui.perfetto.dev)@." file
    | _ -> ());
    exit code
  in
  let n_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Replicas in the cluster.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt string "crash-leader"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Named scenario (crash-leader, partition-leader, lossy-fabric, \
             kill-restart) or a scenario JSON file.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-format trace of the run to $(docv) (single-scenario and \
             --replay modes; ignored by --sweep).")
  in
  let sweep_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sweep" ] ~docv:"N"
          ~doc:
            "Run $(docv) randomized scenarios (cluster sizes 3 and 5) instead of a \
             single one; every run's seed derives from --seed.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"REPRO"
          ~doc:"Replay a failing run from a minimized-repro file written by --repro.")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On failure, write the minimized repro (seed, scenario, violation) to \
                $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run Mu under injected faults (crashes, partitions, loss, forced \
          permission failures) and check linearizability plus the Appendix A \
          invariants. Exits non-zero on any violation.")
    Term.(
      const run $ setup_logs $ seed_arg $ n_arg $ scenario_arg $ sweep_arg $ replay_arg
      $ repro_arg $ trace_arg)

(* --- verify -------------------------------------------------------------------- *)

(* Model-based property testing (DESIGN.md §19): generated (seed,
   scenario, history) triples run through the real cluster and judged
   against the pure KV model; the first failure is shrunk to a minimized,
   byte-stable repro bundle that --replay re-executes byte-identically. *)

let verify_cmd =
  let write_file file s =
    let oc = open_out_bin file in
    output_string oc s;
    close_out oc
  in
  let run () seed cases ns inject clients ops_per_client budget repro_file replay
      out_file quiet =
    let log = if quiet then fun _ -> () else fun s -> Fmt.pr "%s@." s in
    match replay with
    | Some file ->
      (* Replay a committed bundle: re-execute its triple and re-emit the
         bundle with the verdict observed — byte-identical to the input
         exactly when the failure still reproduces. *)
      (match Modelcheck.Repro.of_string (read_file file) with
      | Error msg ->
        Fmt.epr "%s@." msg;
        exit 2
      | Ok bundle ->
        let r, bytes = Modelcheck.Verify.replay bundle in
        Fmt.pr "replay: expected %s, observed %s@."
          (Modelcheck.Conformance.verdict_to_string
             bundle.Modelcheck.Repro.b_verdict)
          (Modelcheck.Conformance.verdict_to_string r.Modelcheck.Shrink.verdict);
        (match r.Modelcheck.Shrink.witness with
        | Some w -> Fmt.pr "%a@." Modelcheck.Conformance.pp_witness w
        | None -> ());
        List.iter
          (fun v -> Fmt.pr "invariant: %a@." Mu.Invariants.pp_violation v)
          r.Modelcheck.Shrink.outcome.Workload.Chaos.violations;
        (match out_file with
        | Some out ->
          write_file out bytes;
          Fmt.pr "re-emitted bundle written to %s@." out
        | None -> ());
        exit
          (if r.Modelcheck.Shrink.verdict = bundle.Modelcheck.Repro.b_verdict
           then 0
           else 1))
    | None ->
      let report =
        Modelcheck.Verify.sweep ~cases ~ns ~inject ~clients ~ops_per_client
          ~budget ~log ~seed:(Int64.of_int seed) ()
      in
      Fmt.pr "%d/%d cases conformant@."
        (report.Modelcheck.Verify.cases - report.Modelcheck.Verify.failed)
        report.Modelcheck.Verify.cases;
      Fmt.pr "%a@." Faults.Scenario.pp_coverage report.Modelcheck.Verify.coverage;
      Fmt.pr "history mix: %a@." Modelcheck.History.pp_stats
        report.Modelcheck.Verify.op_stats;
      (match report.Modelcheck.Verify.first_witness with
      | Some w -> Fmt.pr "first failure: %a@." Modelcheck.Conformance.pp_witness w
      | None -> ());
      (match report.Modelcheck.Verify.minimized with
      | None -> exit 0
      | Some (bundle, shrunk) ->
        Fmt.pr "minimized to %d ops, %d fault events in %d reruns%s@."
          (Modelcheck.Shrink.ops bundle.Modelcheck.Repro.b_triple)
          (List.length
             bundle.Modelcheck.Repro.b_triple.Modelcheck.Shrink.t_scenario
               .Faults.Scenario.events)
          shrunk.Modelcheck.Shrink.reruns
          (if shrunk.Modelcheck.Shrink.exhausted then
             " (budget exhausted — may not be minimal)"
           else "");
        (match shrunk.Modelcheck.Shrink.final.Modelcheck.Shrink.witness with
        | Some w -> Fmt.pr "%a@." Modelcheck.Conformance.pp_witness w
        | None -> ());
        (match repro_file with
        | Some file ->
          write_file file (Modelcheck.Repro.to_string bundle);
          Fmt.pr "minimized repro bundle written to %s@." file
        | None ->
          Fmt.pr "minimized repro bundle: %s@."
            (Modelcheck.Repro.to_string bundle));
        exit 1)
  in
  let cases_arg =
    Arg.(
      value & opt int 25
      & info [ "cases" ] ~docv:"N" ~doc:"Generated (scenario, history) cases to run.")
  in
  let ns_arg =
    Arg.(
      value
      & opt (list int) [ 3; 5 ]
      & info [ "ns" ] ~docv:"N,M"
          ~doc:"Cluster sizes the cases cycle through.")
  in
  let inject_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-lose-put" ] ~docv:"K"
          ~doc:
            "Self-test: silently lose every $(docv)-th Put on all replicas (0 = \
             off). The sweep must catch and shrink it.")
  in
  let clients_arg =
    Arg.(
      value & opt int 3
      & info [ "clients" ] ~docv:"N" ~doc:"Scripted clients per case.")
  in
  let ops_arg =
    Arg.(
      value & opt int 8
      & info [ "ops-per-client" ] ~docv:"N" ~doc:"Ops per scripted client.")
  in
  let budget_arg =
    Arg.(
      value & opt int 500
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Max candidate re-executions the shrinker may spend.")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"On failure, write the minimized repro bundle to $(docv).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"BUNDLE"
          ~doc:
            "Replay a minimized repro bundle instead of sweeping; exits 0 iff the \
             recorded verdict reproduces.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "With --replay: write the re-emitted bundle to $(docv) (byte-identical \
             to the input when the failure reproduces).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-case log lines.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Model-based property testing: run generated fault scenarios and client \
          histories against the cluster, check every reply against a pure \
          reference model, and shrink the first failure to a minimized repro \
          bundle.")
    Term.(
      const run $ setup_logs $ seed_arg $ cases_arg $ ns_arg $ inject_arg
      $ clients_arg $ ops_arg $ budget_arg $ repro_arg $ replay_arg $ out_arg
      $ quiet_arg)

(* --- watch -------------------------------------------------------------------- *)

(* Live SLO dashboard over a chaos run: the online monitor evaluates
   alert rules at virtual-time window boundaries while the cluster runs,
   printing every firing/clearing edge as it happens plus periodic
   status lines. All times are virtual, so equal seeds produce
   byte-identical output — CI double-runs this and cmp's stdout. *)

let watch_cmd =
  let run () seed n scenario_spec clients ops think window interval status_every
      log_file =
    let scenario = scenario_or_die ~n scenario_spec in
    let reg = Telemetry.Registry.create () in
    let sampler = Telemetry.Sampler.create reg ~interval in
    let monitor = ref None in
    let alerts = ref 0 in
    let o =
      Workload.Chaos.run ~metrics:sampler
        ~on_engine:(fun e ->
          let m = Monitor.Online.attach ~window_ns:window e sampler in
          Monitor.Online.on_alert m (fun entry ->
            incr alerts;
            Fmt.pr "%a@." Monitor.Log.pp_entry entry);
          if status_every > 0 then
            Monitor.Online.on_window m (fun w rules ->
                if (Monitor.Slo.index w + 1) mod status_every = 0 then begin
                  let commits = Monitor.Slo.delta w "mu_commit_apply_ns" in
                  let p99 =
                    match
                      Monitor.Slo.quantile_ns w "mu_replication_latency_ns" 0.99
                    with
                    | Some v -> Printf.sprintf "%dns" v
                    | None -> "-"
                  in
                  let fuo =
                    match Monitor.Slo.value w Monitor.Slo.Max "mu_fuo" with
                    | Some v -> int_of_float v
                    | None -> 0
                  in
                  let firing =
                    List.filter Monitor.Rules.firing rules
                    |> List.map Monitor.Rules.name
                  in
                  Fmt.pr "[%8dus] w=%-4d commits=%-3.0f p99=%-8s fuo=%-5d %a@."
                    (Monitor.Slo.t1 w / 1000)
                    (Monitor.Slo.index w) commits p99 fuo
                    Fmt.(
                      if firing = [] then any "ok"
                      else const (list ~sep:comma string) firing)
                    ()
                end);
          monitor := Some m)
        ~clients ~ops_per_client:ops ~think ~seed:(Int64.of_int seed) ~n scenario
    in
    Fmt.pr "---@.%a@." Workload.Chaos.pp_outcome o;
    (match !monitor with
    | None -> ()
    | Some m ->
      Fmt.pr "windows evaluated: %d; alert edges: %d; still firing: %a@."
        (Monitor.Online.windows m)
        (Monitor.Log.length (Monitor.Online.log m))
        Fmt.(list ~sep:comma string)
        (Monitor.Online.firing m);
      (match log_file with
      | Some file ->
        let oc = open_out_bin file in
        output_string oc (Monitor.Log.to_json (Monitor.Online.log m));
        close_out oc;
        Fmt.pr "alert log written to %s@." file
      | None -> ()));
    exit (if Workload.Chaos.passed o then 0 else 1)
  in
  let n_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Replicas in the cluster.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt string "kill-restart"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "Named scenario (crash-leader, partition-leader, lossy-fabric, \
             kill-restart) or a scenario JSON file.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients.")
  in
  let ops_arg =
    Arg.(
      value & opt int 600
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per client.")
  in
  let think_arg =
    Arg.(
      value
      & opt int 50_000
      & info [ "think" ] ~docv:"NS"
          ~doc:
            "Virtual think time between a client's operations; the default \
             stretches traffic across the scenario's fault window so rejoins \
             happen under load.")
  in
  let window_arg =
    Arg.(
      value
      & opt int 20_000
      & info [ "window" ] ~docv:"NS" ~doc:"SLO evaluation window (virtual ns).")
  in
  let interval_arg =
    Arg.(
      value
      & opt int 10_000
      & info [ "interval" ] ~docv:"NS" ~doc:"Telemetry sampling interval (virtual ns).")
  in
  let status_arg =
    Arg.(
      value & opt int 250
      & info [ "status-every" ] ~docv:"K"
          ~doc:"Print a status line every $(docv) windows (0 disables).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Write the alert log (mu-monitor-log/1 JSON) to $(docv).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Watch a chaos run live: the online monitor evaluates SLO windows \
          (latency bands, commit progress, quorum loss, rejoin lag) in virtual \
          time and prints every alert edge as it happens. Deterministic per seed.")
    Term.(
      const run $ setup_logs $ seed_arg $ n_arg $ scenario_arg $ clients_arg $ ops_arg
      $ think_arg $ window_arg $ interval_arg $ status_arg $ log_arg)

(* --- explain ------------------------------------------------------------------ *)

(* Post-mortem causal analysis: rerun an experiment with provenance spans
   on, rebuild the span tree, and attribute where every request's time
   went. Fully deterministic: all times are virtual ns printed as
   fixed-point µs, so two runs with the same arguments produce
   byte-identical output. *)

module Prov = struct
  module Tree = Provenance.Tree
  module An = Provenance.Analyze
end

let explain_cmd =
  let us = Trace.Chrome.fixed_ts in
  let print_health tree =
    (match Prov.Tree.check tree with
    | [] -> Fmt.pr "span tree: %d spans, %d dropped, well-formed@." (Prov.Tree.size tree)
              tree.Prov.Tree.dropped
    | bad ->
      Fmt.pr "span tree: %d spans, %d dropped, %d violations:@." (Prov.Tree.size tree)
        tree.Prov.Tree.dropped (List.length bad);
      List.iter (Fmt.pr "  %s@.") bad)
  in
  let print_epochs events =
    match Prov.An.leader_timeline events with
    | [] -> Fmt.pr "leader epochs: none recorded@."
    | es ->
      Fmt.pr "leader epochs:@.";
      List.iter
        (fun (ep : Prov.An.epoch) ->
          Fmt.pr "  t=%sus  replica %d takes over (gen %d)@." (us ep.ets) ep.epid ep.gen)
        es
  in
  let print_outlier tree rank (s : Prov.Tree.span) =
    Fmt.pr "#%d  request span %d  pid %d  t=%sus  end-to-end %sus@." rank s.Prov.Tree.id
      s.Prov.Tree.pid (us s.Prov.Tree.start)
      (us (Prov.Tree.duration s));
    let rows = Prov.An.phases tree s in
    let sum = Prov.An.phase_sum rows in
    Fmt.pr "    phase attribution (sums to %sus):@." (us sum);
    List.iter
      (fun (r : Prov.An.phase_row) ->
        Fmt.pr "      %-18s %12sus  (%dx)@." r.phase (us r.total) r.count)
      rows;
    match Prov.An.peer_ios tree s with
    | [] -> ()
    | ios ->
      Fmt.pr "    per-peer RDMA:@.";
      List.iter
        (fun (io : Prov.An.peer_io) ->
          if io.acked < 0 then
            Fmt.pr "      peer %d %-12s issued t=%sus  never acked@." io.peer io.op
              (us io.issued)
          else
            Fmt.pr "      peer %d %-12s issued t=%sus  acked +%sus  (%s)@." io.peer io.op
              (us io.issued)
              (us (io.acked - io.issued))
              io.status)
        ios
  in
  let explain_latency seed samples payload top =
    let tr = Trace.Tracer.create ~capacity:((samples + 200) * 256) () in
    let setup = setup_of ~trace:tr ~provenance:true seed in
    let (_ : Sim.Stats.Samples.t) =
      Workload.Experiments.mu_replication_latency setup ~samples ~payload
        ~attach:Mu.Config.Standalone
    in
    let events = Trace.Tracer.events tr in
    let tree = Prov.Tree.of_events events in
    Fmt.pr "=== explain: latency run (seed %d, %d measured requests, %dB payload) ===@."
      seed samples payload;
    print_health tree;
    print_epochs events;
    let reqs = Prov.An.requests tree in
    let outliers = Prov.An.top_outliers tree ~k:top in
    Fmt.pr "@.top %d tail outliers (of %d requests):@." (List.length outliers)
      (List.length reqs);
    List.iteri (fun i s -> print_outlier tree (i + 1) s) outliers;
    (* Aggregate: where does a request's time go on average? *)
    let acc = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun (r : Prov.An.phase_row) ->
            match Hashtbl.find_opt acc r.phase with
            | Some t -> Hashtbl.replace acc r.phase (t + r.total)
            | None ->
              Hashtbl.replace acc r.phase r.total;
              order := r.phase :: !order)
          (Prov.An.phases tree s))
      reqs;
    let total = List.fold_left (fun t p -> t + Hashtbl.find acc p) 0 !order in
    Fmt.pr "@.aggregate phase shares over %d requests:@." (List.length reqs);
    List.iter
      (fun p ->
        let t = Hashtbl.find acc p in
        Fmt.pr "  %-18s %14sus  %3d%%@." p (us t)
          (if total = 0 then 0 else t * 100 / total))
      (List.rev !order);
    (tr, tree)
  and explain_chaos seed n spec ops_opt =
    let seed_override, n, scenario, is_repro =
      if Sys.file_exists spec then begin
        let s = read_file spec in
        match Workload.Chaos.parse_repro s with
        | Ok (seed, n, scenario) -> (Some seed, n, scenario, true)
        | Error _ -> (
          match Faults.Scenario.of_string s with
          | Ok sc -> (None, n, sc, false)
          | Error msg ->
            Fmt.epr "%s: %s@." spec msg;
            exit 2)
      end
      else (None, n, scenario_or_die ~n spec, false)
    in
    let seed = Option.value seed_override ~default:(Int64.of_int seed) in
    (* A repro must replay the failing run exactly, so it keeps the
       library's client defaults. For a plain scenario, think time
       stretches a small history across the named faults (5 ms in) so
       requests are genuinely in flight at the fail-over — more load
       instead would explode the linearizability check. *)
    let ops_per_client, think =
      match ops_opt with
      | Some v -> (Some v, Some 100_000)
      | None -> if is_repro then (None, None) else (Some 60, Some 100_000)
    in
    let tr = Trace.Tracer.create ~capacity:(1 lsl 21) () in
    let o =
      Workload.Chaos.run ~trace:tr ~provenance:true ?ops_per_client ?think ~seed ~n
        scenario
    in
    let events = Trace.Tracer.events tr in
    let tree = Prov.Tree.of_events events in
    Fmt.pr "=== explain: chaos run ===@.%a@." Workload.Chaos.pp_outcome o;
    print_health tree;
    print_epochs events;
    let horizon =
      List.fold_left (fun m (ev : Sim.Probe.event) -> max m ev.ts) 0 events
    in
    let windows =
      Prov.An.windows tree ~horizon ~include_open:(not o.Workload.Chaos.completed)
    in
    (match windows with
    | [] -> Fmt.pr "disruption windows: none@."
    | ws ->
      Fmt.pr "disruption windows:@.";
      List.iter
        (fun (w : Prov.An.window) ->
          Fmt.pr "  %-10s pid %d  [%sus, %sus]  %sus@." w.wname w.wpid (us w.wstart)
            (us w.wfinish)
            (us (w.wfinish - w.wstart)))
        ws);
    let reports = Prov.An.request_reports tree in
    let label (r : Prov.An.req_report) =
      (* The chaos harness parents each request under a client_op span
         carrying (proc, req, key, op). *)
      match
        Option.bind (Prov.Tree.span tree r.rid) (fun s ->
            Prov.Tree.span tree s.Prov.Tree.parent)
      with
      | Some p when p.Prov.Tree.name = "client_op" ->
        let a k = Option.value (Prov.Tree.arg p.Prov.Tree.args k) ~default:"?" in
        Printf.sprintf "proc=%s req=%-3s %s(%s)" (a "proc") (a "req") (a "op") (a "key")
      | _ -> "(unlabelled)"
    in
    let caught =
      List.filter (Prov.An.open_across ~horizon windows) reports
    in
    Fmt.pr "@.requests open across a fail-over window: %d of %d@." (List.length caught)
      (List.length reports);
    List.iter
      (fun (r : Prov.An.req_report) ->
        Fmt.pr "  %-24s span %-5d submitted t=%sus  %s  pickups=%d requeues=%d retries=%d  slots=[%s]  -> %s@."
          (label r) r.rid (us r.submitted)
          (match r.replied with
          | Some t -> Printf.sprintf "replied t=%sus" (us t)
          | None -> "never replied")
          r.pickups r.requeues r.retries
          (String.concat "," (List.map string_of_int r.slots))
          (Prov.An.outcome_name r.verdict))
      caught;
    let count v = List.length (List.filter (fun r -> r.Prov.An.verdict = v) reports) in
    Fmt.pr "totals over %d requests: ok=%d retried=%d duplicated=%d lost=%d@."
      (List.length reports) (count Prov.An.Ok) (count Prov.An.Retried)
      (count Prov.An.Duplicated) (count Prov.An.Lost);
    (tr, tree)
  in
  let run () seed samples payload top chaos_spec n ops json_file perfetto_file =
    let tr, tree =
      match chaos_spec with
      | Some spec -> explain_chaos seed n spec ops
      | None -> explain_latency seed samples payload top
    in
    (match json_file with
    | Some file ->
      Provenance.Export.write_json file tree;
      Fmt.pr "@.span tree written to %s@." file
    | None -> ());
    match perfetto_file with
    | Some file ->
      Trace.Chrome.write_file file
        ~extra:(Provenance.Export.trace_events tree)
        ~processes:(Trace.Tracer.processes tr) ~threads:(Trace.Tracer.threads tr)
        (Trace.Tracer.events tr);
      Fmt.pr "Perfetto trace with provenance overlay written to %s@." file
    | None -> ()
  in
  let top_arg =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"K" ~doc:"Tail outliers to dissect.")
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Request payload size.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SCENARIO"
          ~doc:
            "Explain a chaos run instead of a latency run: a named scenario \
             (crash-leader, partition-leader, lossy-fabric, kill-restart), a scenario \
             JSON file, or a minimized repro written by 'mu_demo chaos --repro' (which \
             pins seed and cluster size).")
  in
  let n_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Replicas (chaos mode).")
  in
  let ops_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ops" ] ~docv:"N"
          ~doc:
            "Operations per chaos client (default: 60 with 100us think time, which \
             stretches the run across the named scenarios' fault windows; repro files \
             keep the original run's parameters).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the reconstructed span tree (schema mu-provenance/1) to $(docv).")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace with the provenance overlay (nestable-async spans + \
             causal flow arrows) to $(docv).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run an experiment with causal provenance on and attribute each request's \
          latency to protocol phases; in chaos mode, reconstruct the fate of every \
          request caught in a fail-over (retried, duplicated, lost).")
    Term.(
      const run $ setup_logs $ seed_arg $ samples_arg 2_000 $ payload $ top_arg
      $ chaos_arg $ n_arg $ ops_arg $ json_arg $ perfetto_arg)

(* --- serve ------------------------------------------------------------------- *)

let serve_cmd =
  let run seed shards clients think duration batch doorbell metrics_file interval =
    let sampler = make_sampler metrics_file interval in
    let setup = setup_of ?metrics:sampler seed in
    let r =
      Serving.Surface.run_point setup ~shards ~batch ?doorbell ~clients ~think_ns:think
        ~duration ()
    in
    Fmt.pr "%d shard(s), %d modeled clients, %.0f us think, %d us run@." shards clients
      (Sim.Stats.ns_to_us think) (duration / 1000);
    Fmt.pr "offered %d (%.2f req/us)  completed %d (%.2f req/us)  shed %d  retried %d@."
      r.Serving.Tier.offered r.Serving.Tier.offered_per_us r.Serving.Tier.completed
      r.Serving.Tier.committed_per_us r.Serving.Tier.shed r.Serving.Tier.retried;
    Fmt.pr "latency p50 %.2f us  p99 %.2f us  suppressed arrivals %d@."
      (Sim.Stats.ns_to_us r.Serving.Tier.p50_ns)
      (Sim.Stats.ns_to_us r.Serving.Tier.p99_ns)
      r.Serving.Tier.suppressed;
    List.iter
      (fun (sr : Serving.Tier.shard_report) ->
        Fmt.pr
          "  shard %d: submitted %6d  committed %6d  shed %6d  retried %4d  \
           max-inflight %4d  p50 %6.2f us  p99 %6.2f us@."
          sr.Serving.Tier.shard sr.Serving.Tier.submitted sr.Serving.Tier.committed
          sr.Serving.Tier.shed sr.Serving.Tier.retried sr.Serving.Tier.max_inflight
          (Sim.Stats.ns_to_us sr.Serving.Tier.p50_ns)
          (Sim.Stats.ns_to_us sr.Serving.Tier.p99_ns))
      r.Serving.Tier.per_shard;
    (match sampler with
    | Some smp ->
      Fmt.pr "@.%s" (Telemetry.Dashboard.render ~sampler:smp (Telemetry.Sampler.registry smp))
    | None -> ());
    export_metrics sampler metrics_file
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Parallel Mu instances (§8).")
  in
  let clients =
    Arg.(
      value
      & opt int 200_000
      & info [ "clients" ] ~docv:"N" ~doc:"Modeled open-loop client population size.")
  in
  let think =
    Arg.(
      value
      & opt int 10_000_000
      & info [ "think" ] ~docv:"NS" ~doc:"Mean per-client think time between requests.")
  in
  let duration =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "duration" ] ~docv:"NS" ~doc:"Virtual time to pace arrivals for.")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Requests coalesced per entry.")
  in
  let doorbell =
    Arg.(
      value
      & opt (some int) None
      & info [ "doorbell" ] ~docv:"N"
          ~doc:
            "Log slots per doorbell-batched RDMA write (default: 4 when batch > 1, else \
             1).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive a sharded Mu cluster through the serving tier: open-loop Zipf/Poisson \
          client population, per-shard admission control, leader doorbell batching.")
    Term.(
      const (fun () -> run) $ setup_logs $ seed_arg $ shards $ clients $ think $ duration
      $ batch $ doorbell $ metrics_arg $ metrics_interval_arg)

(* --- profile ------------------------------------------------------------------ *)

(* Whole-run virtual-time profiler (DESIGN.md §18): every virtual ns of
   the run is attributed to (host, fiber, open provenance-span stack) and
   the buckets sum exactly to the run's span. The folded/speedscope
   exports carry only virtual time, so equal seeds yield byte-identical
   files; --selfcost adds the volatile wall-clock side. *)

let profile_cmd =
  let run () seed mode samples payload rounds scenario_spec n shards batch folded_file
      speedscope_file top selfcost =
    let vts = ref [] in
    let attached =
      if selfcost then
        Some (Monitor.Overhead.Attached.create ~clock:Unix.gettimeofday ())
      else None
    in
    let on_engine e =
      vts := Profile.Vt.attach e :: !vts;
      Option.iter (fun a -> Monitor.Overhead.Attached.attach a e) attached
    in
    let measured f =
      match attached with
      | Some a -> Monitor.Overhead.Attached.measure_run a f
      | None -> f ()
    in
    let label =
      match mode with
      | `Latency ->
        measured (fun () ->
            ignore
              (Workload.Experiments.mu_replication_latency
                 (setup_of ~provenance:true ~on_engine seed)
                 ~samples ~payload ~attach:Mu.Config.Standalone));
        Printf.sprintf "latency %dx%dB" samples payload
      | `Failover ->
        measured (fun () ->
            ignore
              (Workload.Experiments.failover
                 (setup_of ~provenance:true ~on_engine seed)
                 ~rounds));
        Printf.sprintf "failover %d rounds" rounds
      | `Chaos ->
        let scenario = scenario_or_die ~n scenario_spec in
        measured (fun () ->
            ignore
              (Workload.Chaos.run ~on_engine ~provenance:true ~seed:(Int64.of_int seed)
                 ~n scenario));
        Printf.sprintf "chaos %s n=%d" scenario_spec n
      | `Serve ->
        measured (fun () ->
            ignore
              (Serving.Surface.run_point
                 (setup_of ~provenance:true ~on_engine seed)
                 ~shards ~batch ~clients:200_000 ~think_ns:10_000_000
                 ~duration:1_000_000 ()));
        Printf.sprintf "serve %d shards batch %d" shards batch
    in
    List.iter Profile.Vt.finish !vts;
    let folded = Profile.Vt.folded !vts in
    Fmt.pr "=== profile: %s (seed %d, %d engine(s)) ===@." label seed
      (List.length !vts);
    Fmt.pr "%a" (fun ppf -> Profile.Report.pp ~top ppf) folded;
    (match folded_file with
    | Some file ->
      Profile.Vt.write_file file (Profile.Vt.to_folded_string folded);
      Fmt.pr "folded stacks written to %s (flamegraph.pl-ready)@." file
    | None -> ());
    (match speedscope_file with
    | Some file ->
      Profile.Vt.write_file file (Profile.Vt.to_speedscope_string ~name:label folded);
      Fmt.pr "speedscope profile written to %s (open in speedscope.app)@." file
    | None -> ());
    match attached with
    | Some a ->
      Fmt.pr "simulator self-cost (wall-clock, volatile):@.";
      List.iter
        (fun r -> Fmt.pr "  %a@." Monitor.Overhead.Attached.pp_row r)
        (Monitor.Overhead.Attached.report a)
    | None -> ()
  in
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("latency", `Latency); ("failover", `Failover); ("chaos", `Chaos);
               ("serve", `Serve) ])
          `Failover
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Workload to profile: latency, failover, chaos or serve.")
  in
  let payload =
    Arg.(value & opt int 64 & info [ "payload" ] ~docv:"BYTES" ~doc:"Request payload (latency mode).")
  in
  let rounds =
    Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"N" ~doc:"Leader failures (failover mode).")
  in
  let scenario_arg =
    Arg.(
      value
      & opt string "kill-restart"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:"Fault scenario (chaos mode): named or a JSON file.")
  in
  let n_arg =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Replicas (chaos mode).")
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Parallel Mu instances (serve mode).")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Requests per entry (serve mode).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Write folded (flamegraph-collapsed) stacks to $(docv). Byte-deterministic per seed.")
  in
  let speedscope_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ] ~docv:"FILE"
          ~doc:"Write a speedscope JSON profile to $(docv). Byte-deterministic per seed.")
  in
  let top_arg =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"K" ~doc:"Rows in the self/total tables.")
  in
  let selfcost_arg =
    Arg.(
      value & flag
      & info [ "selfcost" ]
          ~doc:
            "Also sample the simulator's own wall-clock and allocation cost per \
             observability layer (volatile; never byte-compare).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a run in virtual time: exact exclusive-ns attribution to \
          host/fiber/provenance-span stacks, folded-stack and speedscope exports \
          (byte-deterministic per seed), optional simulator self-cost sampling.")
    Term.(
      const run $ setup_logs $ seed_arg $ mode_arg $ samples_arg 5_000
      $ payload $ rounds $ scenario_arg $ n_arg $ shards $ batch $ folded_arg
      $ speedscope_arg $ top_arg $ selfcost_arg)

(* --- report ------------------------------------------------------------------ *)

(* Text renderer for the engine_speed and profile sections of a
   mu-bench-results/1 file — the bench records them but the dashboard
   never showed them. *)
let render_results_sections file =
  let module J = Faults.Json in
  match Profile.Compare.load_results file with
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 2
  | Ok j ->
    let fnum obj k = Option.value ~default:0.0 (Option.bind (J.member k obj) J.to_float) in
    let inum obj k = Option.value ~default:0 (Option.bind (J.member k obj) J.to_int) in
    let str obj k = Option.value ~default:"?" (Option.bind (J.member k obj) J.to_str) in
    Fmt.pr "=== %s: engine_speed ===@." file;
    (match J.member "engine_speed" j with
    | Some (J.Obj _ as es) ->
      Fmt.pr "  events/sec (wall, volatile)   %12.2e  (heap-engine baseline %.2e)@."
        (fnum es "events_per_sec")
        (fnum es "heap_baseline_events_per_sec");
      Fmt.pr "  minor words/event             %12.2f  (heap-engine baseline %.1f)@."
        (fnum es "minor_words_per_event")
        (fnum es "heap_baseline_minor_words_per_event");
      Fmt.pr "  raw queue at depth %d: heap %.2e ops/s, wheel %.2e ops/s (%.2fx)@."
        (inum es "queue_depth") (fnum es "heap_queue_ops_per_sec")
        (fnum es "wheel_queue_ops_per_sec") (fnum es "queue_speedup")
    | _ -> Fmt.pr "  not recorded (run the engine-speed section)@.");
    Fmt.pr "=== %s: profile ===@." file;
    (match J.member "profile" j with
    | Some (J.Obj _ as p) ->
      Fmt.pr "  mode %s, %d rounds (virtual time, deterministic per seed):@."
        (str p "mode") (inum p "rounds");
      Fmt.pr "  span %d ns, idle %d ns, %d stacks, %d frames@." (inum p "span_ns")
        (inum p "idle_ns") (inum p "stacks") (inum p "frames");
      (match Option.bind (J.member "selfcost" p) J.to_list with
      | Some (_ :: _ as rows) ->
        Fmt.pr "  simulator self-cost (wall-clock, volatile):@.";
        List.iter
          (fun r ->
            Fmt.pr "    %-18s %10.6f s %14.0f minor words@." (str r "layer")
              (fnum r "wall_s") (fnum r "minor_words"))
          rows
      | _ -> ())
    | _ -> Fmt.pr "  not recorded (run the profile section)@.")

let report_cmd =
  let run seed samples rounds interval metrics_file results_file =
    (match results_file with
    | Some file -> render_results_sections file
    | None -> ());
    if results_file <> None && metrics_file = None then ()
    else begin
      (* One sampler shared across both experiments so the dashboard shows
         replication latency and the fail-over score timeline side by side. *)
      let sampler = Telemetry.Sampler.create (Telemetry.Registry.create ()) ~interval in
      let setup = setup_of ~metrics:sampler seed in
      let lat =
        Workload.Experiments.mu_replication_latency setup ~samples ~payload:64
          ~attach:Mu.Config.Standalone
      in
      let r = Workload.Experiments.failover setup ~rounds in
      pp_result "Mu 64B replication" lat;
      pp_result "total fail-over" r.Workload.Experiments.total;
      Fmt.pr "@.%s"
        (Telemetry.Dashboard.render ~sampler (Telemetry.Sampler.registry sampler));
      export_metrics (Some sampler) metrics_file
    end
  in
  let rounds =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N" ~doc:"Leader failures to inject.")
  in
  let interval =
    Arg.(
      value
      & opt int 20_000
      & info [ "metrics-interval" ] ~docv:"NS"
          ~doc:"Virtual-time sampling interval for the score timeline.")
  in
  let results_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "results" ] ~docv:"FILE"
          ~doc:
            "Render the engine_speed and profile sections of a mu-bench-results/1 \
             file (e.g. BENCH_results.json) instead of running the live workload.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a replication-latency + fail-over workload and render a replica health \
          dashboard (latency percentiles, fail-over phase breakdown, score timeline); \
          with --results, render the recorded engine_speed and profile sections of a \
          bench results file.")
    Term.(
      const (fun () -> run) $ setup_logs $ seed_arg $ samples_arg 20_000 $ rounds $ interval
      $ metrics_arg $ results_arg)

let () =
  let doc = "Experiments with Mu: microsecond consensus on a simulated RDMA fabric." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "mu_demo" ~doc)
          [ latency_cmd; compare_cmd; failover_cmd; throughput_cmd; detectors_cmd;
            metrics_cmd; chaos_cmd; verify_cmd; watch_cmd; explain_cmd; serve_cmd;
            profile_cmd; report_cmd ]))
